"""Tests for shard partitioning and the compressed edge encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    EdgeCodec,
    Graph,
    pack_edge_pointer,
    partition_edges,
    unpack_edge_pointer,
)


def paper_fig3_graph():
    """The 8-node example of paper Fig. 3 (Ns=4, Nd=2)."""
    edges = [(0, 1), (0, 5), (1, 4), (2, 3), (4, 2), (5, 6), (6, 0), (7, 7)]
    src, dst = zip(*edges)
    return Graph(8, src, dst)


class TestPartitioning:
    def test_fig3_shard_assignment(self):
        g = paper_fig3_graph()
        part = partition_edges(g, 4, 2)
        assert part.q_src == 2 and part.q_dst == 4
        # Edge (0,1): src interval 0, dst interval 0.
        src, dst = part.shard(0, 0)
        assert (0, 1) in set(zip(src, dst))
        # Edge (5,6): src interval 1, dst interval 3.
        src, dst = part.shard(1, 3)
        assert (5, 6) in set(zip(src, dst))

    def test_every_edge_in_exactly_one_shard(self):
        g = paper_fig3_graph()
        part = partition_edges(g, 4, 2)
        collected = []
        for s in range(part.q_src):
            for d in range(part.q_dst):
                src, dst = part.shard(s, d)
                collected.extend(zip(src.tolist(), dst.tolist()))
        assert sorted(collected) == sorted(zip(g.src.tolist(), g.dst.tolist()))

    def test_shard_members_in_right_intervals(self):
        g = paper_fig3_graph()
        part = partition_edges(g, 4, 2)
        for s in range(part.q_src):
            for d in range(part.q_dst):
                src, dst = part.shard(s, d)
                assert all(src // 4 == s)
                assert all(dst // 2 == d)

    def test_shard_sizes_match(self):
        g = paper_fig3_graph()
        part = partition_edges(g, 4, 2)
        assert part.shard_sizes().sum() == g.n_edges
        assert part.dst_interval_edge_counts().sum() == g.n_edges

    def test_weighted_shards_carry_weights(self):
        g = paper_fig3_graph().with_weights(np.random.default_rng(1))
        part = partition_edges(g, 4, 2)
        src, dst, weights = part.shard(0, 0)
        assert len(weights) == len(src)

    def test_interval_bounds_clip_at_n(self):
        g = Graph(10, [0], [9])
        part = partition_edges(g, 4, 4)
        assert part.dst_interval_bounds(2) == (8, 10)

    def test_rejects_bad_interval_size(self):
        with pytest.raises(ValueError):
            partition_edges(paper_fig3_graph(), 0, 2)

    @given(st.integers(min_value=2, max_value=200),
           st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_partition_is_exhaustive_and_exclusive(self, n, m, ns, nd):
        """Property: shards tile the edge set for any parameters."""
        rng = np.random.default_rng(n * 1000 + m)
        g = Graph(n, rng.integers(0, n, m), rng.integers(0, n, m))
        part = partition_edges(g, ns, nd)
        total = 0
        for s in range(part.q_src):
            for d in range(part.q_dst):
                src, dst = part.shard(s, d)
                total += len(src)
                assert all(src // ns == s)
                assert all(dst // nd == d)
        assert total == m


class TestEdgeCodec:
    def test_round_trip_unweighted(self):
        codec = EdgeCodec(1 << 16, 1 << 15)
        src = np.array([0, 65535, 123])
        dst = np.array([32767, 0, 456])
        words = codec.encode_shard(src, dst)
        assert words.dtype == np.uint32
        assert len(words) == 4  # 3 edges + terminator
        out_src, out_dst = codec.decode_shard(words)
        assert np.array_equal(out_src, src)
        assert np.array_equal(out_dst, dst)

    def test_round_trip_weighted(self):
        codec = EdgeCodec(256, 256, weighted=True)
        src = np.array([1, 2])
        dst = np.array([3, 4])
        weights = np.array([100, 255])
        words = codec.encode_shard(src, dst, weights)
        out = codec.decode_shard(words)
        assert np.array_equal(out[0], src)
        assert np.array_equal(out[1], dst)
        assert np.array_equal(out[2], weights)

    def test_terminator_stops_decoding_of_padding(self):
        """Garbage after the terminator (DRAM word tail) is ignored."""
        codec = EdgeCodec(256, 256)
        words = codec.encode_shard(np.array([5]), np.array([6]))
        padded = np.concatenate(
            [words, np.array([0xDEAD, 0xBEEF], dtype=np.uint32)]
        )
        src, dst = codec.decode_shard(padded)
        assert list(src) == [5] and list(dst) == [6]

    def test_empty_shard_is_just_terminator(self):
        codec = EdgeCodec(256, 256)
        words = codec.encode_shard(np.array([], dtype=np.uint32),
                                   np.array([], dtype=np.uint32))
        assert len(words) == 1
        src, dst = codec.decode_shard(words)
        assert len(src) == 0

    def test_rejects_oversized_offsets(self):
        codec = EdgeCodec(16, 16)
        with pytest.raises(ValueError):
            codec.encode_shard(np.array([16]), np.array([0]))
        with pytest.raises(ValueError):
            codec.encode_shard(np.array([0]), np.array([16]))

    def test_rejects_oversized_intervals(self):
        with pytest.raises(ValueError):
            EdgeCodec(1 << 17, 16)
        with pytest.raises(ValueError):
            EdgeCodec(16, 1 << 16)

    def test_missing_terminator_detected(self):
        codec = EdgeCodec(256, 256)
        with pytest.raises(ValueError):
            codec.decode_shard(np.array([7], dtype=np.uint32))

    def test_32_bits_per_unweighted_edge(self):
        codec = EdgeCodec(1 << 16, 1 << 15)
        assert codec.shard_bytes(100) == 4 * 101

    def test_decode_word(self):
        codec = EdgeCodec(256, 256)
        words = codec.encode_shard(np.array([9]), np.array([13]))
        assert EdgeCodec.decode_word(words[0]) == (9, 13)
        assert not EdgeCodec.is_terminator(words[0])
        assert EdgeCodec.is_terminator(words[1])

    @given(st.lists(st.tuples(st.integers(0, 65535), st.integers(0, 32767),
                              st.integers(0, 255)), max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_weighted_round_trip_property(self, edges):
        codec = EdgeCodec(1 << 16, 1 << 15, weighted=True)
        if edges:
            src, dst, w = map(np.array, zip(*edges))
        else:
            src = dst = w = np.array([], dtype=np.uint32)
        out = codec.decode_shard(codec.encode_shard(src, dst, w))
        assert np.array_equal(out[0], src)
        assert np.array_equal(out[1], dst)
        assert np.array_equal(out[2], w)


class TestEdgePointer:
    def test_round_trip(self):
        value = pack_edge_pointer(0xABCDE0, 12345, True)
        assert unpack_edge_pointer(value) == (0xABCDE0, 12345, True)
        value = pack_edge_pointer(64, 0, False)
        assert unpack_edge_pointer(value) == (64, 0, False)

    def test_fits_64_bits(self):
        value = pack_edge_pointer((1 << 36) - 1, (1 << 27) - 1, True)
        assert int(value) < 1 << 64

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_edge_pointer(1 << 36, 0, False)
        with pytest.raises(ValueError):
            pack_edge_pointer(0, 1 << 27, False)
