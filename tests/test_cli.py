"""Tests for the `python -m repro` command-line entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_runs_a_cheap_experiment(self, capsys):
        assert main(["fig17"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 17" in out
        assert "freq MHz" in out

    def test_table4_style_experiment(self, capsys):
        assert main(["table3"]) == 0
        assert "preprocessing time" in capsys.readouterr().out

    def test_list_includes_trace(self, capsys):
        assert main(["list"]) == 0
        assert "trace" in capsys.readouterr().out

    def test_trace_subcommand_exports_and_validates(self, capsys,
                                                    tmp_path):
        prefix = str(tmp_path / "out" / "run")
        assert main([
            "trace", "--graph", "RV", "--algorithm", "bfs",
            "--interval", "128", "--out", prefix, "--csv",
        ]) == 0
        out = capsys.readouterr().out
        assert "PE cycle accounting" in out
        assert "validated" in out
        for suffix in (".trace.json", ".timeline.jsonl",
                       ".timeline.csv", ".summary.json"):
            assert (tmp_path / "out" / f"run{suffix}").exists()
