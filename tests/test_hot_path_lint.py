"""Lint-style guard: hot modules must stay on the bulk/fields channel API.

The kernelization pass (DESIGN.md 6.4) migrated every hot-path
producer/consumer from element-at-a-time ``Channel.push`` / ``pop``
loops to the bulk (``push_many`` / ``pop_many`` / ``pop_all``) and
fields (``push_request`` / ``front_request`` / ``drop`` ...) APIs.
This test walks the AST of the hot modules and fails when a loop body
re-introduces a single-token object-API call on a fixed channel, so a
regression shows up as a named file:line instead of a slow benchmark.

Deliberately out of scope:

* the fabric (arbiter / crossbar / crossing) -- those grant exactly one
  token per cycle by construction (the paper's arbitration), so a
  per-token call is the architecture, not a missed batch;
* subscripted receivers like ``ports[channel].push(...)`` -- the target
  channel varies per iteration (per-DRAM-channel burst pieces), which
  no bulk call on a single channel can express;
* freelist receivers (``pool.pop()``) -- LIFO list pops, not channels.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

HOT_MODULES = (
    "core/bank.py",
    "core/hierarchy.py",
    "mem/dram.py",
    "accel/pe.py",
    "accel/scheduler.py",
)

# Object-API methods that move one token per call.
SINGLE_TOKEN = {"push", "front"}
# Receiver base names that are not channels.
ALLOWED_RECEIVERS = ("pool", "pending", "path", "stack", "heap")


def _receiver_name(node):
    """Base identifier of a call receiver, or None if it varies."""
    if isinstance(node, ast.Subscript):
        return None  # ports[channel].push(...): target varies
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _violations_in(tree, filename):
    violations = []
    loops = [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.For, ast.While))
    ]
    for loop in loops:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            single = func.attr in SINGLE_TOKEN or (
                func.attr == "pop" and not node.args and not node.keywords
            )
            if not single:
                continue
            receiver = _receiver_name(func.value)
            if receiver is None:
                continue
            if any(mark in receiver for mark in ALLOWED_RECEIVERS):
                continue
            violations.append(
                f"{filename}:{node.lineno}: '{receiver}.{func.attr}(...)' "
                f"inside a loop -- use push_many/pop_many or the fields "
                f"API on hot paths"
            )
    return violations


class TestHotPathLint:
    def test_hot_modules_exist(self):
        for module in HOT_MODULES:
            assert (SRC / module).is_file(), module

    def test_no_single_token_loops_in_hot_modules(self):
        violations = []
        for module in HOT_MODULES:
            path = SRC / module
            tree = ast.parse(path.read_text(), filename=module)
            violations.extend(_violations_in(tree, module))
        assert not violations, "\n".join(violations)

    def test_linter_catches_a_seeded_violation(self):
        """The rule itself must actually fire (guards the guard)."""
        bad = ast.parse(
            "def tick(self, engine):\n"
            "    for item in batch:\n"
            "        self.resp_out.push(item)\n"
        )
        assert _violations_in(bad, "seeded.py")

    def test_linter_allows_varying_and_freelist_receivers(self):
        good = ast.parse(
            "def issue(self):\n"
            "    for channel, item in pieces:\n"
            "        ports[channel].push(item)\n"
            "        token = pool.pop()\n"
        )
        assert _violations_in(good, "seeded.py") == []
