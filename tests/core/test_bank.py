"""Tests for the MOMS bank pipeline: coalescing, stalls, correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BankParams, MomsBank, MomsRequest
from repro.core.hierarchy import DramDownstream
from repro.mem import DramTimings, MemorySystem
from repro.sim import Channel, Engine


class BankHarness:
    """One bank wired to one DRAM channel with a patterned store."""

    def __init__(self, latency=10, **param_overrides):
        params = dict(
            n_mshrs=64,
            n_subentries=256,
            cache_lines=0,
            cache_assoc=1,
        )
        params.update(param_overrides)
        self.engine = Engine()
        self.mem = MemorySystem(
            self.engine, 1 << 16, n_channels=1,
            timings=DramTimings(latency=latency),
        )
        # Pattern: word at address a holds a // 4.
        words = self.mem.view_u32(0, (1 << 16) // 4)
        words[:] = np.arange(len(words), dtype=np.uint32)
        self.req_in = self.engine.add_channel(Channel(64, name="req"))
        self.resp_out = self.engine.add_channel(Channel(512, name="resp"))
        line_in = self.engine.add_channel(Channel(16, name="line"))
        downstream = DramDownstream(
            self.mem, [self.mem.channels[0].req], line_in
        )
        self.bank = MomsBank(
            BankParams(**params), self.req_in, self.resp_out, line_in,
            downstream, self.mem,
        )
        self.engine.add_component(self.bank)

    def request(self, addr, req_id=None, size=4, port=0):
        self.req_in.push(MomsRequest(addr=addr, size=size,
                                     req_id=req_id, port=port))

    def run_and_collect(self, n_responses, max_cycles=50_000):
        responses = []

        def done():
            while self.resp_out.can_pop():
                responses.append(self.resp_out.pop())
            return len(responses) >= n_responses

        self.engine.run(done=done, max_cycles=max_cycles)
        return responses

    def dram_lines(self):
        return self.mem.channels[0].stats.lines_single


def word_of(response):
    return int(np.frombuffer(response.data.tobytes(), dtype=np.uint32)[0])


class TestMissPath:
    def test_single_miss_round_trip(self):
        h = BankHarness()
        h.request(addr=0x100, req_id="r1")
        (resp,) = h.run_and_collect(1)
        assert resp.req_id == "r1"
        assert resp.addr == 0x100
        assert word_of(resp) == 0x100 // 4
        assert h.dram_lines() == 1

    def test_secondary_misses_coalesce(self):
        """Many requests to one line -> one DRAM request, all served."""
        h = BankHarness(latency=60)  # longer than the 16-request train
        for i in range(16):
            h.request(addr=0x200 + 4 * (i % 16), req_id=i)
        responses = h.run_and_collect(16)
        assert len(responses) == 16
        assert h.dram_lines() == 1
        assert h.bank.stats.primary_misses == 1
        assert h.bank.stats.secondary_misses == 15

    def test_distinct_lines_fetch_separately(self):
        h = BankHarness()
        for i in range(8):
            h.request(addr=i * 64, req_id=i)
        responses = h.run_and_collect(8)
        assert h.dram_lines() == 8
        assert {r.req_id for r in responses} == set(range(8))

    def test_data_correct_for_every_offset(self):
        h = BankHarness()
        for offset in range(0, 64, 4):
            h.request(addr=0x400 + offset, req_id=offset)
        responses = h.run_and_collect(16)
        for resp in responses:
            assert word_of(resp) == resp.addr // 4

    def test_mshr_freed_after_drain(self):
        h = BankHarness()
        h.request(addr=0, req_id=0)
        h.run_and_collect(1)
        assert h.bank.outstanding_misses == 0
        assert h.bank.is_idle()

    def test_port_and_id_passthrough(self):
        h = BankHarness()
        h.request(addr=64, req_id=("edge", 7), port=3)
        (resp,) = h.run_and_collect(1)
        assert resp.req_id == ("edge", 7)
        assert resp.port == 3


class TestCachePath:
    def test_second_access_hits(self):
        h = BankHarness(cache_lines=16)
        h.request(addr=0, req_id="a")
        h.run_and_collect(1)
        h.request(addr=4, req_id="b")
        (resp,) = h.run_and_collect(1)
        assert h.bank.stats.cache_hits == 1
        assert h.dram_lines() == 1
        assert word_of(resp) == 1

    def test_hit_rate_statistic(self):
        h = BankHarness(cache_lines=16)
        h.request(addr=0, req_id=0)
        h.run_and_collect(1)
        for i in range(1, 4):
            h.request(addr=4 * i, req_id=i)
        h.run_and_collect(3)
        assert h.bank.stats.hit_rate == pytest.approx(3 / 4)

    def test_cacheless_refetches(self):
        h = BankHarness(cache_lines=0)
        h.request(addr=0, req_id="a")
        h.run_and_collect(1)
        h.request(addr=0, req_id="b")
        h.run_and_collect(1)
        assert h.dram_lines() == 2


class TestStalls:
    def test_traditional_blocks_when_mshrs_full(self):
        """16 associative MSHRs: the 17th distinct line must wait."""
        h = BankHarness(latency=200, associative_mshrs=True, n_mshrs=16,
                        n_subentries=16 * 8, subentries_per_mshr=8)
        for i in range(17):
            h.request(addr=i * 64, req_id=i)
        # Run until all 17 served; stalls must have occurred.
        responses = h.run_and_collect(17)
        assert len(responses) == 17
        assert h.bank.stats.stall_mshr > 0
        assert h.bank.mshrs.stats.peak_occupancy == 16

    def test_subentry_limit_stalls_traditional(self):
        """9th request to one line exceeds 8 subentries per MSHR."""
        h = BankHarness(latency=300, associative_mshrs=True, n_mshrs=16,
                        n_subentries=16 * 8, subentries_per_mshr=8)
        for i in range(12):
            h.request(addr=4 * (i % 16), req_id=i)
        responses = h.run_and_collect(12)
        assert len(responses) == 12
        assert h.bank.stats.stall_subentry > 0

    def test_subentry_pool_exhaustion_stalls_moms(self):
        h = BankHarness(latency=400, n_mshrs=64, n_subentries=8)
        for i in range(16):
            h.request(addr=4 * (i % 16), req_id=i)
        responses = h.run_and_collect(16)
        assert len(responses) == 16
        assert h.bank.stats.stall_subentry > 0

    def test_moms_outstanding_grows_with_latency(self):
        """High latency + many lines -> many outstanding misses at once."""
        h = BankHarness(latency=500, n_mshrs=64, n_subentries=256)
        for i in range(48):
            h.request(addr=i * 64, req_id=i)
        h.run_and_collect(48)
        assert h.bank.mshrs.stats.peak_occupancy >= 16


class TestPipelineSharing:
    def test_drain_blocks_requests(self):
        """While serving a fat subentry chain, new requests wait."""
        h = BankHarness(latency=20)
        # 32 requests to one line build a long chain.
        for i in range(32):
            h.request(addr=4 * (i % 16), req_id=i)
        responses = h.run_and_collect(32)
        assert len(responses) == 32
        # Drain is 1/cycle on the shared pipeline: the bank was busy
        # for at least one cycle per response.
        assert h.bank.stats.busy_cycles >= 32


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_every_request_answered_exactly_once_with_correct_data(
        self, word_indices
    ):
        """Property: lossless, correct, and at most one fetch per line."""
        h = BankHarness(cache_lines=8)
        for i, word in enumerate(word_indices):
            h.request(addr=word * 4, req_id=i)
        responses = h.run_and_collect(len(word_indices))
        assert len(responses) == len(word_indices)
        by_id = {r.req_id: r for r in responses}
        assert len(by_id) == len(word_indices)
        for i, word in enumerate(word_indices):
            assert word_of(by_id[i]) == word
        unique_lines = len({word * 4 // 64 for word in word_indices})
        assert unique_lines <= h.dram_lines() <= len(word_indices)
