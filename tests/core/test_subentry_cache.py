"""Tests for the subentry store and the cache arrays."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CacheArray, SubentryStore


class TestSubentryStore:
    def test_append_and_iterate(self):
        store = SubentryStore(16, row_size=4)
        chain = store.new_chain()
        for i in range(6):
            assert store.append(chain, i)
        assert list(store.chain_items(chain)) == list(range(6))
        assert store.chain_length(chain) == 6
        assert len(chain) == 2  # two rows of four

    def test_rows_allocated_lazily(self):
        store = SubentryStore(16, row_size=4)
        chain = store.new_chain()
        assert store.free_rows == 4
        store.append(chain, "x")
        assert store.free_rows == 3

    def test_overflow_when_no_rows(self):
        store = SubentryStore(8, row_size=4)  # 2 rows
        a, b, c = store.new_chain(), store.new_chain(), store.new_chain()
        store.append(a, 1)
        store.append(b, 2)
        assert not store.append(c, 3)
        assert store.stats.overflows == 1
        # The failed chain is unchanged.
        assert store.chain_length(c) == 0

    def test_free_chain_recycles_rows(self):
        store = SubentryStore(8, row_size=4)
        a = store.new_chain()
        for i in range(8):
            assert store.append(a, i)
        assert store.free_rows == 0
        store.free_chain(a)
        assert store.free_rows == 2
        assert store.entries_live == 0

    def test_shared_pool_across_chains(self):
        """Capacity is pooled: one hot line can take almost all rows."""
        store = SubentryStore(32, row_size=4)
        hot = store.new_chain()
        for i in range(28):
            assert store.append(hot, i)
        cold = store.new_chain()
        assert store.append(cold, "c")  # one row left

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariant(self, chain_picks):
        """Property: live entries == sum of chain lengths, rows conserved."""
        store = SubentryStore(64, row_size=4)
        chains = [store.new_chain() for _ in range(8)]
        for pick in chain_picks:
            store.append(chains[pick], pick)
        total = sum(store.chain_length(c) for c in chains)
        assert store.entries_live == total
        rows_used = sum(len(c) for c in chains)
        assert store.free_rows == store.n_rows - rows_used
        for chain in chains:
            store.free_chain(chain)
        assert store.free_rows == store.n_rows


class TestCacheArray:
    def test_cacheless_never_hits(self):
        cache = CacheArray(0)
        assert not cache.present
        assert not cache.probe(1)
        cache.fill(1)
        assert not cache.probe(1)

    def test_fill_then_hit(self):
        cache = CacheArray(16)
        assert not cache.probe(5)
        cache.fill(5)
        assert cache.probe(5)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_direct_mapped_conflict(self):
        cache = CacheArray(4, assoc=1)
        cache.fill(0)
        cache.fill(4)  # same set (line % 4)
        assert not cache.probe(0)
        assert cache.probe(4)
        assert cache.stats.evictions == 1

    def test_set_associative_holds_conflicting_lines(self):
        cache = CacheArray(8, assoc=2)  # 4 sets x 2 ways
        cache.fill(0)
        cache.fill(4)
        assert cache.probe(0) and cache.probe(4)

    def test_lru_eviction_order(self):
        cache = CacheArray(2, assoc=2)  # one set, two ways
        cache.fill(10)
        cache.fill(20)
        cache.probe(10)  # 10 now MRU
        cache.fill(30)   # evicts 20
        assert cache.probe(10)
        assert not cache.probe(20)

    def test_refill_does_not_duplicate(self):
        cache = CacheArray(4)
        cache.fill(1)
        cache.fill(1)
        assert cache.occupancy == 1

    def test_from_kib(self):
        cache = CacheArray.from_kib(4)  # 4 KiB / 64 B = 64 lines
        assert cache.n_lines == 64
        assert CacheArray.from_kib(0).present is False

    def test_invalid_assoc_rejected(self):
        with pytest.raises(ValueError):
            CacheArray(10, assoc=4)

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded(self, lines):
        cache = CacheArray(16, assoc=4)
        for line in lines:
            cache.fill(line)
        assert cache.occupancy <= 16
        for s in cache._sets:
            assert len(s) <= 4
