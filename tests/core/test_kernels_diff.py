"""Differential tests: REPRO_KERNELS=vector vs the scalar reference.

Columnar engine v2 keeps every vectorized structure bit-identical to
its scalar twin by construction (DESIGN.md 6.6).  These tests enforce
the contract the hard way: seeded random operation sequences (>=10k
ops per structure) drive both implementations and assert equal state
after every step -- same tables, same stats, same delivered beats on
the same cycles -- then whole systems race end to end, including under
fault plans (MSHR-full windows, DRAM blackouts) with the vector
kernels active.
"""

import dataclasses

import numpy as np
import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.core.mshr import CuckooMshrFile
from repro.core.subentry import SubentryStore
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.faults import FaultPlan
from repro.graph import web_graph
from repro.mem import LINE_BYTES, DramTimings, MemRequest, MemorySystem
from repro.sim import Channel, Component, Engine
from repro.sim.kernels import splitmix64_slots

SEED = 20210614  # ISCA'21 -- any fixed seed works, this one is ours


# -- MSHR: batch splitmix64 slots vs the scalar chain ----------------------


class TestMshrKernels:
    def test_batch_slots_match_scalar_chain(self):
        """10k+ line addresses, batch kernel vs per-address chain."""
        file = CuckooMshrFile(capacity=4096, n_ways=4, seed=7)
        rng = np.random.default_rng(SEED)
        addrs = np.unique(np.concatenate([
            rng.integers(0, 1 << 20, 6000),
            rng.integers(0, 1 << 44, 6000),  # >32-bit lines too
        ]))
        assert len(addrs) >= 10_000
        batch = splitmix64_slots(addrs, file._multipliers, file.way_size)
        for i, line_addr in enumerate(addrs.tolist()):
            assert tuple(batch[i].tolist()) == file._slots(line_addr)

    def test_primed_file_evolves_identically(self):
        """Random lookup/insert/remove sequence, primed vs lazy memo.

        ``prime_slots`` is the vector path's only MSHR-side addition;
        it must be a pure precomputation -- the primed file's tables,
        occupancy, stats, and PRNG state stay equal to the lazy file's
        after every operation.
        """
        lazy = CuckooMshrFile(capacity=512, n_ways=4, seed=3)
        primed = CuckooMshrFile(capacity=512, n_ways=4, seed=3)
        rng = np.random.default_rng(SEED + 1)
        live = []
        ops = 0
        while ops < 12_000:
            batch = rng.integers(0, 4096, rng.integers(1, 32)).tolist()
            primed.prime_slots(batch)
            for line_addr in batch:
                ops += 1
                roll = rng.random()
                if live and roll < 0.35:
                    victim = live.pop(rng.integers(0, len(live)))
                    assert (lazy.remove(victim).line_addr
                            == primed.remove(victim).line_addr)
                elif lazy.lookup(line_addr) is None:
                    primed.lookup(line_addr)
                    a = lazy.insert(line_addr)
                    b = primed.insert(line_addr)
                    assert (a is None) == (b is None)
                    if a is not None:
                        live.append(line_addr)
                else:
                    primed.lookup(line_addr)
                assert lazy.occupancy == primed.occupancy
                assert lazy._victim_state == primed._victim_state
                assert lazy.stats.as_dict() == primed.stats.as_dict()
        snapshot = lambda f: [  # noqa: E731 - local shorthand
            [e.line_addr if e is not None else None for e in table]
            for table in f._tables
        ]
        assert snapshot(lazy) == snapshot(primed)
        assert lazy.stats.insert_failures > 0  # sequence stressed kicks


# -- Subentry store: columnar chains vs linked rows ------------------------


class TestSubentryKernels:
    def test_random_append_free_sequences_match(self):
        """12k append/free ops on paired stores, state equal throughout."""
        scalar = SubentryStore(48, row_size=4, columnar=False)
        columnar = SubentryStore(48, row_size=4, columnar=True)
        rng = np.random.default_rng(SEED + 2)
        chains = []  # (scalar chain, columnar chain)
        for op in range(12_000):
            roll = rng.random()
            if not chains or roll < 0.8:
                if not chains or roll < 0.1:
                    chains.append((scalar.new_chain(), columnar.new_chain()))
                s_chain, c_chain = chains[rng.integers(0, len(chains))]
                item = (int(rng.integers(0, 1 << 16)),
                        int(rng.integers(0, 8)),
                        int(rng.integers(0, 16)) * 4, 4)
                assert (scalar.append(s_chain, item)
                        == columnar.append(c_chain, item))
            else:
                s_chain, c_chain = chains.pop(rng.integers(0, len(chains)))
                assert (list(SubentryStore.chain_items(s_chain))
                        == list(SubentryStore.chain_items(c_chain)))
                scalar.free_chain(s_chain)
                columnar.free_chain(c_chain)
            assert scalar.free_rows == columnar.free_rows
            assert scalar.entries_live == columnar.entries_live
            assert scalar.stats.as_dict() == columnar.stats.as_dict()
        assert scalar.stats.overflows > 0  # the overflow path was hit
        for s_chain, c_chain in chains:
            assert (SubentryStore.chain_length(s_chain)
                    == SubentryStore.chain_length(c_chain))
            assert (list(SubentryStore.chain_items(s_chain))
                    == list(SubentryStore.chain_items(c_chain)))


# -- DRAM channel: segment scheduler vs per-beat tuples --------------------


class _ScriptedProducer(Component):
    """Pushes a fixed (cycle, request-factory) script into a channel."""

    demand_driven = True

    def __init__(self, engine, req, script):
        self.req = req
        self.script = script
        self.idx = 0
        engine.add_component(self)
        req.subscribe_space(self)
        engine.wake(self)

    def tick(self, engine):
        while self.idx < len(self.script):
            when, make = self.script[self.idx]
            if when > engine.now:
                engine.wake_at(self, when)
                return
            if not self.req.can_push():
                return  # space wake re-arms
            self.req.push(make())
            self.idx += 1

    def is_idle(self):
        return self.idx >= len(self.script)


class _PatternedConsumer(Component):
    """Drains 0..3 beats per cycle following a fixed seeded pattern."""

    demand_driven = True

    def __init__(self, engine, resp, pattern):
        self.resp = resp
        self.pattern = pattern
        self.got = []
        engine.add_component(self)
        resp.subscribe_data(self)

    def tick(self, engine):
        budget = self.pattern[engine.now % len(self.pattern)]
        while budget and self.resp.can_pop():
            beat = self.resp.pop()
            self.got.append((
                engine.now, beat.tag, beat.addr, beat.beat, beat.last,
                beat.is_write_ack,
                None if beat.is_write_ack else bytes(beat.data),
            ))
            budget -= 1
        if self.resp.can_pop():
            engine.wake(self)  # throttled this cycle, not starved


def _dram_service_trace(monkeypatch, kernels):
    """Drive one DRAM channel with a seeded random request mix."""
    monkeypatch.setenv("REPRO_KERNELS", kernels)
    monkeypatch.setenv("REPRO_ENGINE", "demand")
    engine = Engine()
    mem = MemorySystem(engine, 1 << 20, n_channels=1,
                       timings=DramTimings(latency=12))
    mem.view_u32(0, (1 << 20) // 4)[:] = np.arange(
        (1 << 20) // 4, dtype=np.uint32)
    resp = engine.add_channel(Channel(8))
    rng = np.random.default_rng(SEED + 3)
    script = []
    when = 0
    expected_beats = 0
    for index in range(800):
        when += int(rng.integers(0, 4))
        beats = int(rng.integers(1, 9))
        addr = int(rng.integers(0, (1 << 20) // LINE_BYTES - beats))
        addr *= LINE_BYTES
        if rng.random() < 0.2:
            payload = bytes(rng.integers(0, 256, 8, dtype=np.uint8))
            script.append((when, (
                lambda a=addr, p=payload: MemRequest(
                    addr=a, nbytes=8, kind="single", is_write=True,
                    data=np.frombuffer(p, dtype=np.uint8), tag=("w", index),
                    respond_to=resp)
            )))
            expected_beats += 1  # the write ack
        else:
            nbytes = beats * LINE_BYTES
            script.append((when, (
                lambda a=addr, n=nbytes, t=("r", index): MemRequest(
                    addr=a, nbytes=n, kind="burst", tag=t, respond_to=resp)
            )))
            expected_beats += beats
    _ScriptedProducer(engine, mem.channels[0].req, script)
    consumer = _PatternedConsumer(
        engine, resp,
        np.random.default_rng(SEED + 4).integers(0, 4, 64).tolist(),
    )
    engine.run(done=lambda: len(consumer.got) >= expected_beats,
               max_cycles=200_000)
    channel = mem.channels[0]
    assert channel.pending == 0
    return consumer.got, engine.now, channel.stats.as_dict()


class TestDramKernels:
    def test_segment_service_matches_per_beat(self, monkeypatch):
        """~3.6k beats delivered cycle-for-cycle, byte-for-byte equal."""
        scalar = _dram_service_trace(monkeypatch, "scalar")
        vector = _dram_service_trace(monkeypatch, "vector")
        assert scalar == vector
        assert len(scalar[0]) > 3000
        assert scalar[2]["peak_queue"] > 8  # backpressure was exercised


# -- End-to-end: whole systems race scalar vs vector -----------------------


def _small_system(algorithm, **kwargs):
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    graph = web_graph(600, 3000, seed=9)
    return AcceleratorSystem(graph, algorithm, config, **kwargs)


def _run_mode(monkeypatch, algorithm, kernels, **kwargs):
    monkeypatch.setenv("REPRO_KERNELS", kernels)
    monkeypatch.setenv("REPRO_ENGINE", "demand")
    system = _small_system(algorithm, **kwargs)
    result = system.run(max_iterations=3)
    hierarchy = system.hierarchy
    banks = list(hierarchy.private_banks) + list(hierarchy.shared_banks)
    return result, {
        "cycles": result.cycles,
        "values": result.values.tolist(),
        "mshr": [bank.mshrs.stats.as_dict() for bank in banks],
        "subentries": [bank.subentries.stats.as_dict() for bank in banks],
        "banks": [dataclasses.asdict(bank.stats) for bank in banks],
        "dram": [ch.stats.as_dict() for ch in system.mem.channels],
    }

class TestEndToEndIdentity:
    @pytest.mark.parametrize("algorithm", ["pagerank", "bfs"])
    def test_cycles_and_state_identical(self, monkeypatch, algorithm):
        _, scalar = _run_mode(monkeypatch, algorithm, "scalar")
        _, vector = _run_mode(monkeypatch, algorithm, "vector")
        assert scalar == vector


# -- Fault plans under the vector kernels ----------------------------------


class TestFaultPlansUnderVector:
    """MSHR-full windows and DRAM blackouts with REPRO_KERNELS=vector."""

    @pytest.mark.parametrize("plan_name, engagement", [
        ("mshr", "mshr_forced_failures"),
        ("dram", "blackout_cycles_entered"),
    ])
    def test_vector_recovers_bit_identically(self, monkeypatch, plan_name,
                                             engagement):
        monkeypatch.setenv("REPRO_KERNELS", "vector")
        monkeypatch.setenv("REPRO_ENGINE", "demand")
        baseline = _small_system("bfs").run()
        plan = getattr(FaultPlan, f"{plan_name}_plan")()
        system = _small_system("bfs", checks=True, fault_plan=plan)
        result = system.run()
        assert system.fault_state.stats[engagement] > 0
        assert (result.values == baseline.values).all()

    @pytest.mark.parametrize("plan_name", ["mshr", "dram"])
    def test_faulted_cycles_match_scalar(self, monkeypatch, plan_name):
        """Faulted runs are cycle-identical across kernel modes too."""
        plan_maker = getattr(FaultPlan, f"{plan_name}_plan")
        results = {}
        for kernels in ("scalar", "vector"):
            monkeypatch.setenv("REPRO_KERNELS", kernels)
            monkeypatch.setenv("REPRO_ENGINE", "demand")
            run = _small_system("bfs", fault_plan=plan_maker()).run()
            results[kernels] = (run.cycles, run.values.tolist())
        assert results["scalar"] == results["vector"]
