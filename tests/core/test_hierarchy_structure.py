"""Structural tests: scaled sizes, floorplan crossings, bank params."""

from repro.core.hierarchy import HierarchySizes
from repro.fabric import AWS_F1_FLOORPLAN
from repro.fabric.design import (
    MOMS_TRADITIONAL,
    MOMS_TWO_LEVEL,
    DesignDescription,
)
from repro.mem import MemorySystem
from repro.core import build_hierarchy
from repro.sim import Engine


def design(**kwargs):
    defaults = dict(n_pes=8, n_banks=8, organization=MOMS_TWO_LEVEL,
                    n_channels=4)
    defaults.update(kwargs)
    return DesignDescription(**defaults)


class TestHierarchySizes:
    def test_full_scale_matches_paper(self):
        sizes = HierarchySizes.from_design(design(), scale=1.0,
                                           cache_scale=1.0)
        assert sizes.shared.n_mshrs == 4096
        assert sizes.shared.n_subentries == 32768
        assert sizes.shared.cache_lines == 256 * 1024 // 64
        assert sizes.private.n_subentries == 49152

    def test_scale_preserves_subentry_to_mshr_ratio(self):
        full = HierarchySizes.from_design(design(), scale=1.0)
        scaled = HierarchySizes.from_design(design(), scale=1 / 64)
        ratio_full = full.shared.n_subentries / full.shared.n_mshrs
        ratio_scaled = scaled.shared.n_subentries / scaled.shared.n_mshrs
        assert ratio_scaled == ratio_full

    def test_cache_scaled_harder_than_mshrs(self):
        scaled = HierarchySizes.from_design(design(), scale=1 / 64)
        # Default cache_scale = scale / 8.
        assert scaled.shared.cache_lines == int(
            256 * 1024 // 64 / 64 / 8
        )

    def test_traditional_sizes_not_scaled(self):
        sizes = HierarchySizes.from_design(
            design(organization=MOMS_TRADITIONAL), scale=1 / 64
        )
        assert sizes.shared.n_mshrs == 16
        assert sizes.shared.subentries_per_mshr == 8
        assert sizes.shared.associative_mshrs
        assert sizes.private.n_mshrs == 16

    def test_private_cache_associativity(self):
        sizes = HierarchySizes.from_design(
            design(private_cache_kib=256), scale=1.0, cache_scale=1.0
        )
        assert sizes.private.cache_assoc == 4
        assert sizes.private.cache_lines % 4 == 0


class TestFloorplanWiring:
    def build(self, organization, floorplan):
        engine = Engine()
        mem = MemorySystem(engine, 1 << 18, n_channels=4)
        hierarchy = build_hierarchy(
            engine, mem, design(organization=organization),
            scale=1 / 64, floorplan=floorplan,
        )
        return engine, hierarchy

    def test_floorplan_adds_crossings(self):
        flat_engine, _ = self.build(MOMS_TWO_LEVEL, None)
        plan_engine, _ = self.build(MOMS_TWO_LEVEL, AWS_F1_FLOORPLAN)
        # Die crossings materialize as extra components.
        assert len(plan_engine._components) > len(flat_engine._components)

    def test_shared_banks_bound_to_one_channel(self):
        _, hierarchy = self.build(MOMS_TWO_LEVEL, AWS_F1_FLOORPLAN)
        for bank in hierarchy.shared_banks:
            ports = bank.downstream.request_ports
            live = [p for p in ports if p is not None]
            assert len(live) == 1

    def test_bank_die_matches_channel_die(self):
        _, hierarchy = self.build(MOMS_TWO_LEVEL, AWS_F1_FLOORPLAN)
        plan = AWS_F1_FLOORPLAN
        n_banks = hierarchy.design.n_banks
        for b in range(n_banks):
            bank_die = plan.die_of_bank(b, n_banks, 4)
            channel = b * 4 // n_banks
            assert bank_die == plan.die_of_channel(channel)
