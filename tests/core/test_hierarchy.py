"""Integration tests for the four memory-hierarchy organizations."""

import numpy as np
import pytest

from repro.core import MomsRequest, build_hierarchy
from repro.fabric import AWS_F1_FLOORPLAN
from repro.fabric.design import (
    MOMS_PRIVATE,
    MOMS_SHARED,
    MOMS_TRADITIONAL,
    MOMS_TWO_LEVEL,
    DesignDescription,
)
from repro.mem import DramTimings, MemorySystem
from repro.sim import Component, Engine


class RequestDriver(Component):
    """Stands in for a PE: issues a scripted address list, collects data."""

    def __init__(self, pe_index, req_port, resp_port, addrs):
        self.pe_index = pe_index
        self.req_port = req_port
        self.resp_port = resp_port
        self.to_send = list(enumerate(addrs))
        self.responses = []

    def tick(self, engine):
        if self.to_send and self.req_port.can_push():
            i, addr = self.to_send.pop(0)
            self.req_port.push(
                MomsRequest(addr=addr, size=4, req_id=(self.pe_index, i),
                            port=self.pe_index)
            )
        while self.resp_port.can_pop():
            self.responses.append(self.resp_port.pop())

    def is_idle(self):
        return not self.to_send


class HierarchyHarness:
    def __init__(self, organization, n_pes=4, n_banks=4, n_channels=2,
                 floorplan=None, latency=30, **design_overrides):
        self.engine = Engine()
        self.mem = MemorySystem(
            self.engine, 1 << 18, n_channels=n_channels,
            timings=DramTimings(latency=latency),
        )
        words = self.mem.view_u32(0, (1 << 18) // 4)
        words[:] = np.arange(len(words), dtype=np.uint32)
        design = DesignDescription(
            n_pes=n_pes,
            n_banks=n_banks,
            organization=organization,
            n_channels=n_channels,
            **design_overrides,
        )
        self.hierarchy = build_hierarchy(
            self.engine, self.mem, design, scale=1 / 64,
            floorplan=floorplan,
        )
        self.drivers = []

    def drive(self, per_pe_addrs):
        for pe, addrs in enumerate(per_pe_addrs):
            driver = RequestDriver(
                pe,
                self.hierarchy.pe_req_ports[pe],
                self.hierarchy.pe_resp_ports[pe],
                addrs,
            )
            self.engine.add_component(driver)
            self.drivers.append(driver)

    def run(self, max_cycles=200_000):
        totals = [len(d.to_send) for d in self.drivers]
        self.engine.run(
            done=lambda: all(
                not d.to_send and len(d.responses) == t
                for d, t in zip(self.drivers, totals)
            ),
            max_cycles=max_cycles,
        )

    def check_all_correct(self):
        for driver in self.drivers:
            assert driver.responses, "driver received nothing"
            for resp in driver.responses:
                value = int(np.frombuffer(resp.data.tobytes(),
                                          dtype=np.uint32)[0])
                assert value == resp.addr // 4, (
                    f"wrong data for addr {resp.addr:#x}"
                )
                assert resp.port == driver.pe_index

    def dram_single_lines(self):
        return sum(ch.stats.lines_single for ch in self.mem.channels)


ALL_ORGS = [MOMS_SHARED, MOMS_PRIVATE, MOMS_TWO_LEVEL, MOMS_TRADITIONAL]


class TestAllOrganizations:
    @pytest.mark.parametrize("organization", ALL_ORGS)
    def test_serves_scattered_requests_correctly(self, organization):
        h = HierarchyHarness(organization)
        rng = np.random.default_rng(7)
        addrs = [
            [int(a) * 4 for a in rng.integers(0, 1 << 14, size=40)]
            for _ in range(4)
        ]
        h.drive(addrs)
        h.run()
        h.check_all_correct()
        assert h.hierarchy.total_requests() == 160

    @pytest.mark.parametrize("organization", ALL_ORGS)
    def test_with_floorplan_crossings(self, organization):
        h = HierarchyHarness(organization, floorplan=AWS_F1_FLOORPLAN,
                             n_channels=2)
        addrs = [[(pe * 64 + i) * 4 for i in range(20)] for pe in range(4)]
        h.drive(addrs)
        h.run()
        h.check_all_correct()


class TestCoalescing:
    def test_shared_coalesces_across_pes(self):
        """All PEs hammer one line: one DRAM fetch suffices."""
        h = HierarchyHarness(MOMS_SHARED, latency=100)
        h.drive([[0, 4, 8, 12] for _ in range(4)])
        h.run()
        h.check_all_correct()
        assert h.dram_single_lines() == 1

    def test_private_cannot_coalesce_across_pes(self):
        """Private MOMSes each fetch the hot line: 4 DRAM fetches."""
        h = HierarchyHarness(MOMS_PRIVATE, latency=100)
        h.drive([[0, 4, 8, 12] for _ in range(4)])
        h.run()
        h.check_all_correct()
        assert h.dram_single_lines() == 4

    def test_two_level_coalesces_at_shared_level(self):
        """Two-level: private misses meet in the shared MOMS."""
        h = HierarchyHarness(MOMS_TWO_LEVEL, latency=100)
        h.drive([[0, 4, 8, 12] for _ in range(4)])
        h.run()
        h.check_all_correct()
        assert h.dram_single_lines() == 1

    def test_private_level_coalesces_within_pe(self):
        """Repeated same-line requests from one PE: one L2 request."""
        h = HierarchyHarness(MOMS_TWO_LEVEL, latency=100)
        h.drive([[4 * i for i in range(16)], [], [], []])
        h.run()
        assert h.dram_single_lines() == 1
        l1 = h.hierarchy.private_banks[0]
        assert l1.stats.secondary_misses >= 10


class TestRouting:
    def test_bank_of_line_respects_channel_binding(self):
        h = HierarchyHarness(MOMS_SHARED, n_banks=4, n_channels=2)
        for line_addr in range(0, 4096, 7):
            bank = h.hierarchy.bank_of_line(line_addr)
            channel = h.mem.channel_of(line_addr * 64)
            banks_per_channel = 4 // 2
            assert bank // banks_per_channel == channel

    def test_banks_must_divide_channels(self):
        with pytest.raises(ValueError):
            HierarchyHarness(MOMS_SHARED, n_banks=3, n_channels=2)


class TestContention:
    def test_shared_suffers_bank_conflicts(self):
        """PEs hitting distinct lines on one bank conflict at the crossbar."""
        h = HierarchyHarness(MOMS_SHARED, n_banks=4, n_channels=2)
        # All addresses on channel 0, bank 0: line % 2 == 0, granule 0.
        addrs = [
            [(64 * (2 * i)) for i in range(10)] for _ in range(4)
        ]
        h.drive(addrs)
        h.run()
        h.check_all_correct()
        xbar = h.hierarchy.crossbars[0]
        assert xbar.conflict_cycles > 0

    def test_stats_aggregation(self):
        h = HierarchyHarness(MOMS_TWO_LEVEL)
        h.drive([[i * 4 for i in range(32)] for _ in range(4)])
        h.run()
        assert h.hierarchy.total_requests() == 128
        assert 0.0 <= h.hierarchy.hit_rate() <= 1.0
        assert h.hierarchy.dram_lines_requested() >= 1
        breakdown = h.hierarchy.stall_breakdown()
        assert set(breakdown) == {
            "stall_mshr", "stall_subentry", "stall_downstream",
            "stall_response_port",
        }
        assert h.hierarchy.is_idle()
