"""Tests for cuckoo and fully-associative MSHR files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AssociativeMshrFile, CuckooMshrFile


class TestCuckooMshrFile:
    def test_insert_then_lookup(self):
        mshrs = CuckooMshrFile(64)
        entry = mshrs.insert(0x123)
        assert entry is not None
        assert mshrs.lookup(0x123) is entry
        assert mshrs.occupancy == 1

    def test_lookup_missing_returns_none(self):
        mshrs = CuckooMshrFile(64)
        assert mshrs.lookup(0x42) is None

    def test_remove_frees_slot(self):
        mshrs = CuckooMshrFile(64)
        mshrs.insert(7)
        removed = mshrs.remove(7)
        assert removed.line_addr == 7
        assert mshrs.lookup(7) is None
        assert mshrs.occupancy == 0

    def test_remove_missing_raises(self):
        mshrs = CuckooMshrFile(64)
        with pytest.raises(KeyError):
            mshrs.remove(9)

    def test_fills_to_high_load_factor(self):
        """Cuckoo hashing reaches high occupancy before failing."""
        mshrs = CuckooMshrFile(1024, n_ways=4)
        inserted = 0
        for line in range(1024):
            if mshrs.insert(line) is not None:
                inserted += 1
        assert inserted / mshrs.capacity > 0.85

    def test_insert_failure_preserves_state(self):
        """A failed insert must leave every previous entry findable."""
        mshrs = CuckooMshrFile(16, n_ways=2, max_kicks=4)
        inserted = []
        line = 0
        # Fill until the first failure.
        while True:
            if mshrs.insert(line) is not None:
                inserted.append(line)
            else:
                break
            line += 1
            assert line < 10_000
        # All previously inserted lines still there, failed one absent.
        for prev in inserted:
            assert mshrs.lookup(prev) is not None
        assert mshrs.lookup(line) is None
        assert mshrs.occupancy == len(inserted)

    def test_kick_stats_recorded(self):
        mshrs = CuckooMshrFile(32, n_ways=2)
        for line in range(24):
            mshrs.insert(line)
        assert mshrs.stats.inserts <= 24
        assert mshrs.stats.peak_occupancy == mshrs.occupancy

    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    unique=True, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_behaves_like_a_set(self, lines):
        """Property: cuckoo file == python set (when inserts succeed)."""
        mshrs = CuckooMshrFile(512)
        model = set()
        for line in lines:
            if mshrs.insert(line) is not None:
                model.add(line)
        for line in lines:
            assert (mshrs.lookup(line) is not None) == (line in model)
        assert mshrs.occupancy == len(model)
        assert sorted(e.line_addr for e in mshrs.entries()) == sorted(model)

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=63)),
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_insert_remove_interleaving(self, ops):
        """Property: arbitrary insert/remove sequences stay consistent."""
        mshrs = CuckooMshrFile(256)
        model = set()
        for is_insert, line in ops:
            if is_insert:
                if line not in model and mshrs.insert(line) is not None:
                    model.add(line)
            elif line in model:
                mshrs.remove(line)
                model.discard(line)
        assert mshrs.occupancy == len(model)
        for line in model:
            assert mshrs.lookup(line) is not None


class TestAssociativeMshrFile:
    def test_blocks_at_capacity(self):
        mshrs = AssociativeMshrFile(capacity=4)
        for line in range(4):
            assert mshrs.insert(line) is not None
        assert mshrs.insert(99) is None
        assert mshrs.stats.insert_failures == 1

    def test_remove_unblocks(self):
        mshrs = AssociativeMshrFile(capacity=2)
        mshrs.insert(1)
        mshrs.insert(2)
        assert mshrs.insert(3) is None
        mshrs.remove(1)
        assert mshrs.insert(3) is not None

    def test_paper_default_is_sixteen(self):
        mshrs = AssociativeMshrFile()
        assert mshrs.capacity == 16

    def test_load_factor(self):
        mshrs = AssociativeMshrFile(capacity=8)
        mshrs.insert(5)
        assert mshrs.load_factor == pytest.approx(1 / 8)
