"""System-level fault injection: graceful degradation, never corruption.

BFS and SCC are integer fixpoint algorithms whose converged values are
independent of timing and response order, so a recoverable fault plan
must reproduce the no-fault values *bit-identically* -- any divergence
means a token was lost, duplicated, or misrouted.
"""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.faults import FaultPlan
from repro.graph import web_graph

PLANS = {
    "dram": FaultPlan.dram_plan,
    "channel": FaultPlan.channel_plan,
    "mshr": FaultPlan.mshr_plan,
}

_ENGAGEMENT = {
    "dram": ("latency_spiked_requests", "reorders", "blackout_cycles_entered"),
    "channel": ("backpressure_windows",),
    "mshr": ("mshr_forced_failures",),
}


def _system(algorithm, **kwargs):
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    graph = web_graph(600, 3000, seed=9)
    return AcceleratorSystem(graph, algorithm, config, **kwargs)


@pytest.fixture(scope="module")
def bfs_baseline():
    return _system("bfs").run()


class TestFaultPlans:
    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    def test_bfs_recovers_bit_identically(self, plan_name, bfs_baseline):
        system = _system(
            "bfs", checks=True, fault_plan=PLANS[plan_name](),
        )
        result = system.run()
        stats = system.fault_state.stats
        # The plan must actually have engaged; a pass with zero injected
        # faults proves nothing.
        assert any(stats[key] for key in _ENGAGEMENT[plan_name]), stats
        assert (result.values == bfs_baseline.values).all()

    def test_scc_recovers_under_dram_faults(self):
        baseline = _system("scc").run()
        system = _system("scc", checks=True,
                         fault_plan=FaultPlan.dram_plan())
        result = system.run()
        assert system.fault_state.stats["latency_spiked_requests"] > 0
        assert (result.values == baseline.values).all()

    def test_faults_cost_cycles(self, bfs_baseline):
        """Degradation is visible: the dram plan slows the run down."""
        result = _system("bfs", fault_plan=FaultPlan.dram_plan()).run()
        assert result.cycles > bfs_baseline.cycles

    def test_plans_are_deterministic(self):
        """Same plan, same workload -> same cycle count, twice."""
        first = _system("bfs", fault_plan=FaultPlan.channel_plan()).run()
        second = _system("bfs", fault_plan=FaultPlan.channel_plan()).run()
        assert first.cycles == second.cycles
        assert (first.values == second.values).all()
