"""Unit tests for the token ledger, drain checks, and mutation smoke."""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.faults import FaultPlan, InvariantViolation, TokenLedger
from repro.graph import web_graph


class TestTokenLedger:
    def test_conservation_through_lifecycle(self):
        ledger = TokenLedger()
        scope = ("pe", 0)
        ledger.issue(scope, 7)
        ledger.issue(scope, 9)
        assert ledger.in_flight(scope) == 2
        ledger.retire(scope, 7)
        ledger.assert_conserved()
        assert ledger.in_flight(scope) == 1
        ledger.retire(scope, 9)
        ledger.assert_drained()
        assert ledger.violations == 0

    def test_unknown_token_raises_at_verify(self):
        ledger = TokenLedger()
        ledger.issue(("pe", 0), 7)
        with pytest.raises(InvariantViolation) as excinfo:
            ledger.verify(("pe", 0), 8)
        assert excinfo.value.details["token"] == 8
        assert ledger.violations == 1

    def test_unknown_scope_raises(self):
        ledger = TokenLedger()
        with pytest.raises(InvariantViolation):
            ledger.retire(("bank", "shared0"), 1)

    def test_multiset_tokens_retire_one_at_a_time(self):
        """Unweighted PEs reuse dst offsets as IDs: tokens are a multiset."""
        ledger = TokenLedger()
        scope = ("pe", 1)
        ledger.issue(scope, 5)
        ledger.issue(scope, 5)
        ledger.retire(scope, 5)
        assert ledger.in_flight(scope) == 1
        ledger.retire(scope, 5)
        with pytest.raises(InvariantViolation):
            ledger.retire(scope, 5)

    def test_drain_check_reports_leaked_tokens(self):
        ledger = TokenLedger()
        ledger.issue(("bank", "shared0"), 0x40)
        with pytest.raises(InvariantViolation) as excinfo:
            ledger.assert_drained("end of iteration 1")
        assert "end of iteration 1" in str(excinfo.value)
        assert ("bank", "shared0") in excinfo.value.details["leaks"]

    def test_snapshot_counts(self):
        ledger = TokenLedger()
        ledger.issue(("dram", "ch0"), 64)
        snap = ledger.snapshot()
        assert snap[repr(("dram", "ch0"))] == {
            "issued": 1, "retired": 0, "in_flight": 1,
        }


def _small_system(algorithm, **kwargs):
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    graph = web_graph(600, 3000, seed=9)
    return AcceleratorSystem(graph, algorithm, config, **kwargs)


class TestSystemChecks:
    def test_checked_run_matches_unchecked(self):
        """Ledger + watchdog + drain checks must not change results."""
        baseline = _small_system("bfs").run()
        checked_system = _small_system("bfs", checks=True)
        checked = checked_system.run()
        assert checked.cycles == baseline.cycles
        assert (checked.values == baseline.values).all()
        # The ledger actually saw traffic (not a vacuous pass).
        assert checked_system.ledger.in_flight() == 0
        assert any(
            scope["issued"] > 0
            for scope in checked_system.ledger.snapshot().values()
        )

    def test_mutation_smoke_is_caught_by_ledger(self):
        """A corrupted response ID must die in the ledger, not corrupt."""
        system = _small_system(
            "bfs", checks=True, fault_plan=FaultPlan.mutation_plan(at=30),
        )
        with pytest.raises(InvariantViolation) as excinfo:
            system.run()
        assert "never issued" in str(excinfo.value)
        assert system.fault_state.stats["mutations"] == 1

    def test_mutation_without_checks_would_crash_differently(self):
        """Without the ledger the corruption surfaces late (or not at all):
        the flipped ID indexes nothing, so the PE-side lookup misbehaves.
        This pins why verify-at-peek matters."""
        system = _small_system(
            "bfs", fault_plan=FaultPlan.mutation_plan(at=30),
        )
        with pytest.raises(Exception) as excinfo:
            system.run()
        assert not isinstance(excinfo.value, InvariantViolation)
