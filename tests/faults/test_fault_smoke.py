"""Fault-smoke harness returns structured, assertable trigger evidence."""

import pytest

from repro.faults.smoke import run_fault_smoke


@pytest.fixture(scope="module")
def summary():
    return run_fault_smoke(algorithms=("bfs",), log=lambda message: None)


class TestFaultSmokeStructure:
    def test_smoke_passes(self, summary):
        assert summary["failures"] == []

    def test_every_plan_triggered(self, summary):
        """Vacuous passes are impossible to miss: the summary carries a
        machine-checkable triggered flag and the engagement counters
        behind it for every planned run."""
        assert summary["untriggered"] == []
        planned = [run for run in summary["runs"]
                   if run["plan"] not in (None, "mutation")]
        assert planned  # the matrix really ran
        for run in planned:
            assert run["triggered"] is True
            assert sum(run["engagement"].values()) > 0
            # engagement is the subset of fault stats the plan promises
            # to move; it must agree with the full stats dict.
            for key, count in run["engagement"].items():
                assert run["fault_stats"][key] == count

    def test_mutation_run_reports_trigger(self, summary):
        mutation = [run for run in summary["runs"]
                    if run["plan"] == "mutation"]
        assert len(mutation) == 1
        assert mutation[0]["triggered"] is True
        assert mutation[0]["caught"] is True
