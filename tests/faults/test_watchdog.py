"""Watchdog, stall reports, and fault windows (unit level)."""

import pytest

from repro.faults import Watchdog, WatchdogError, Window, build_stall_report
from repro.faults.report import format_stall_report
from repro.sim import Channel, Component, DeadlockError, Engine


class Spinner(Component):
    """Livelocks: ticks forever without ever moving a token."""

    demand_driven = True

    def __init__(self, peer_channel):
        self.peer_channel = peer_channel

    def tick(self, engine):
        # Waits for space on a full channel while re-arming itself every
        # cycle -- the classic busy-wait livelock the bare deadlock
        # detector cannot see (the engine is never idle).
        if self.peer_channel.can_push():
            self.peer_channel.push("token")
        engine.wake(self)

    def is_idle(self):
        return False


def _build_livelock():
    """Two components each spinning on the other's full channel."""
    engine = Engine()
    a_to_b = engine.add_channel(Channel(1, name="a_to_b"))
    b_to_a = engine.add_channel(Channel(1, name="b_to_a"))
    # Fill both channels; nobody ever pops, so both spinners busy-wait.
    a_to_b.push("stuck")
    b_to_a.push("stuck")
    a_to_b.commit()
    b_to_a.commit()
    engine.add_component(Spinner(a_to_b))
    engine.add_component(Spinner(b_to_a))
    return engine


class TestWatchdog:
    def test_livelock_raises_structured_stall_report(self):
        engine = _build_livelock()
        engine.watchdog = Watchdog(window=500, min_ticks=10)
        with pytest.raises(WatchdogError) as excinfo:
            engine.run(done=lambda: False, max_cycles=100_000)
        error = excinfo.value
        # Caught within ~2 windows, not at the cycle budget.
        assert engine.now < 5_000
        report = error.report
        assert report["reason"].startswith("no token movement")
        stuck = {ch["name"] for ch in report["stuck_channels"]}
        assert stuck == {"a_to_b", "b_to_a"}
        assert all(ch["full"] for ch in report["stuck_channels"])
        spinners = [c for c in report["components"] if "Spinner" in
                    c["component"]]
        assert len(spinners) == 2 and all(not c["idle"] for c in spinners)
        assert "stall report at cycle" in str(error)

    def test_real_progress_never_trips(self):
        """A system that keeps moving tokens must not trip the watchdog."""
        engine = Engine()
        channel = engine.add_channel(Channel(2, name="flow"))

        class Pump(Component):
            demand_driven = True
            moved = 0

            def tick(self, engine):
                if channel.can_pop():
                    channel.pop()
                    Pump.moved += 1
                if channel.can_push():
                    channel.push("x")
                engine.wake(self)

        engine.add_component(Pump())
        engine.watchdog = Watchdog(window=100, min_ticks=1)
        engine.run(done=lambda: Pump.moved >= 2_000, max_cycles=50_000)
        assert Pump.moved >= 2_000

    def test_idle_timer_wait_does_not_trip(self):
        """min_ticks filters legitimate quiet stretches (timer sleeps)."""
        engine = Engine()

        class Sleeper(Component):
            demand_driven = True
            fired = False

            def tick(self, engine):
                if engine.now >= 10_000:
                    Sleeper.fired = True
                else:
                    engine.wake_at(self, 10_000)

        engine.add_component(Sleeper())
        engine.watchdog = Watchdog(window=100, min_ticks=8)
        engine.run(done=lambda: Sleeper.fired, max_cycles=50_000)
        assert Sleeper.fired

    def test_deadlock_error_carries_stall_report(self):
        """The bare DeadlockError path is enriched with the report too."""
        engine = Engine()
        channel = engine.add_channel(Channel(1, name="orphan"))

        class OneShot(Component):
            demand_driven = True
            done = False

            def tick(self, engine):
                if not OneShot.done:
                    channel.push("x")
                    OneShot.done = True

        engine.add_component(OneShot())
        with pytest.raises(DeadlockError) as excinfo:
            engine.run(done=lambda: False, max_cycles=1_000)
        assert excinfo.value.report is not None
        names = [ch["name"] for ch in excinfo.value.report["stuck_channels"]]
        assert "orphan" in names
        assert "stall report" in str(excinfo.value)


class TestStallReport:
    def test_report_formats_without_error(self):
        engine = _build_livelock()
        engine._step()
        report = build_stall_report(engine, reason="unit test")
        text = format_stall_report(report)
        assert "unit test" in text
        assert "a_to_b" in text and "b_to_a" in text


class TestWindow:
    def test_active_and_boundaries(self):
        window = Window(period=100, duration=10, phase=5)
        assert not window.active(4)
        assert window.active(5)
        assert window.active(14)
        assert not window.active(15)
        assert window.next_boundary(4) == 5
        assert window.next_boundary(5) == 15
        assert window.next_boundary(20) == 105
        assert window.active(105)

    def test_rejects_degenerate_windows(self):
        with pytest.raises(ValueError):
            Window(period=10, duration=10)
        with pytest.raises(ValueError):
            Window(period=10, duration=0)
