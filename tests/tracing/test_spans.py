"""Span structure, sampling, stage accounting, and merge fan-ins."""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_SHARED, MOMS_TWO_LEVEL
from repro.graph import web_graph
from repro.tracing import SpansConfig, sample_hash
from repro.tracing.analyze import (
    QUEUEING_STAGES,
    SERVICE_STAGES,
    STAGE_ORDER,
    analyze_spans,
    decompose,
    percentile,
)

GRAPH = web_graph(900, 4500, seed=11)


def _run(organization=MOMS_TWO_LEVEL, algorithm="pagerank", rate=8):
    config = ArchitectureConfig(
        _design(4, 4, organization, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    system = AcceleratorSystem(
        GRAPH, algorithm, config, spans=SpansConfig(sample_rate=rate)
    )
    result = system.run(max_iterations=2)
    return system, result


@pytest.fixture(scope="module")
def traced():
    return _run()


@pytest.fixture(scope="module")
def traced_shared():
    return _run(organization=MOMS_SHARED)


class TestSampling:
    def test_exact_hash_sampling(self, traced):
        """Sampled count is exactly the hash predicate over (pe, seq)."""
        system, _ = traced
        tracer = system.tracer
        rate = tracer.config.sample_rate
        expected = sum(
            1
            for pe, issued in tracer._seq.items()
            for seq in range(issued)
            if sample_hash(pe, seq) % rate == 0
        )
        assert tracer.sampled == expected
        assert tracer.requests_seen == sum(tracer._seq.values())
        assert 0 < tracer.sampled < tracer.requests_seen

    def test_all_sampled_spans_complete(self, traced):
        system, result = traced
        tracer = system.tracer
        assert tracer.live_spans() == 0
        assert len(tracer.spans) == tracer.sampled
        summary = result.stats["spans"]
        assert summary["spans_completed"] == tracer.sampled
        assert summary["spans_live"] == 0

    def test_rate_one_traces_everything(self):
        system, _ = _run(rate=1)
        tracer = system.tracer
        assert tracer.sampled == tracer.requests_seen
        assert len(tracer.spans) == tracer.requests_seen

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SpansConfig(sample_rate=0)
        with pytest.raises(ValueError):
            SpansConfig(recorder_depth=0)


class TestSpanStructure:
    def test_stage_sum_invariant(self, traced):
        """queue + miss_wait + drain + return == total, exactly."""
        system, _ = traced
        for span in system.tracer.spans:
            stages = decompose(span)
            parts = sum(
                stages.get(stage, 0)
                for stage in ("queue", "miss_wait", "drain", "return")
            )
            assert parts == stages["total"], span
            assert all(d >= 0 for d in stages.values()), span

    def test_event_timeline_is_monotonic(self, traced):
        system, _ = traced
        for span in system.tracer.spans:
            cycles = [cycle for cycle, _label in span["events"]]
            assert cycles == sorted(cycles), span
            assert span["events"][0][1].startswith("issue@")
            assert span["events"][-1][1].startswith("retire@")

    def test_misses_carry_the_miss_path(self, traced):
        system, _ = traced
        misses = [
            s for s in system.tracer.spans
            if s.get("outcome") in ("primary", "secondary")
        ]
        assert misses
        for span in misses:
            assert span["replay"] >= span["drain_begin"]
            assert span["fan_in"] >= 1
            # DRAM correlation: every drained line was fetched.
            if "dram_accept" in span:
                assert span["dram_deliver"] >= span["dram_accept"]

    def test_hits_skip_the_miss_path(self, traced_shared):
        system, _ = traced_shared
        hits = [
            s for s in system.tracer.spans if s.get("outcome") == "hit"
        ]
        assert hits  # the shared org does produce request-level hits
        for span in hits:
            assert "drain_begin" not in span
            stages = decompose(span)
            assert stages["queue"] + stages["return"] == stages["total"]


class TestMergeFanin:
    def test_fanin_accounts_for_every_drain(self, traced):
        system, _ = traced
        tracer = system.tracer
        fanin = tracer.merge_fanin()
        assert fanin  # misses happened
        for bank in system.hierarchy.banks:
            drains = bank.stats.lines_returned
            if not drains:
                continue
            distribution = fanin[bank.name]
            assert sum(distribution.values()) == drains
            # Replayed requests per bank == sum(fan_in * drains).
            replayed = sum(
                int(fan_in) * count
                for fan_in, count in distribution.items()
            )
            assert replayed == (
                bank.stats.primary_misses + bank.stats.secondary_misses
            )

    def test_merge_rate_in_run_stats(self, traced):
        system, result = traced
        rate = result.stats["mshr_merge_rate"]
        secondary = sum(
            b.stats.secondary_misses for b in system.hierarchy.banks
        )
        misses = secondary + sum(
            b.stats.primary_misses for b in system.hierarchy.banks
        )
        assert rate == round(secondary / misses, 4)
        by_bank = result.stats["mshr_merge_rate_by_bank"]
        assert set(by_bank) == {b.name for b in system.hierarchy.banks}

    def test_merge_rate_in_telemetry_summary(self):
        from repro.telemetry import TelemetryConfig

        config = ArchitectureConfig(
            _design(4, 4, MOMS_TWO_LEVEL, "pagerank", n_channels=2),
            **SCALED_DEFAULTS,
        )
        system = AcceleratorSystem(
            GRAPH, "pagerank", config,
            telemetry=TelemetryConfig(sample_interval=64),
        )
        system.run(max_iterations=2)
        summary = system.telemetry.summary()
        cache = summary["cache"]
        total = cache["secondary_misses"] + cache["primary_misses"]
        assert cache["merge_rate"] == round(
            cache["secondary_misses"] / total, 4
        )
        from repro.report import telemetry_summary_line

        assert "mshr merge rate" in telemetry_summary_line(summary)


class TestAnalyzer:
    def test_percentile_is_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 0.999) == 100
        assert percentile([], 0.5) == 0
        assert percentile([7], 0.999) == 7

    def test_analyze_spans_totals(self, traced):
        system, _ = traced
        stages = analyze_spans(system.tracer.spans)
        totals = stages["_totals"]
        queueing = service = 0
        for span in system.tracer.spans:
            for stage, duration in decompose(span).items():
                if stage in QUEUEING_STAGES:
                    queueing += duration
                elif stage in SERVICE_STAGES:
                    service += duration
        assert totals == {
            "queueing_cycles": queueing, "service_cycles": service
        }
        for stage in stages:
            if stage == "_totals":
                continue
            assert stage in STAGE_ORDER
            row = stages[stage]
            assert row["p50"] <= row["p99"] <= row["p999"] <= row["max"]
            assert row["count"] > 0
