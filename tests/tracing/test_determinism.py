"""Span streams are deterministic and the tracer never perturbs.

Three contracts from DESIGN 6.8:

* the exported span JSONL is **byte-identical** across the demand and
  legacy engines and the vector and scalar kernels (sampling depends
  only on schedule-determined (pe, seq) coordinates);
* that identity survives an active fault plan (a DRAM-spike plan
  shifts every timestamp, but shifts them identically in all modes);
* attaching a tracer changes nothing the model computes.
"""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.faults.plan import FaultPlan, install_faults
from repro.graph import web_graph
from repro.tracing import SpansConfig
from repro.tracing.export import spans_jsonl_bytes

GRAPH = web_graph(900, 4500, seed=11)

MODES = [
    ("demand", "vector"),
    ("demand", "scalar"),
    ("legacy", "vector"),
    ("legacy", "scalar"),
]


def _run(engine_env, kernels_env, algorithm, monkeypatch,
         spans=True, fault_plan=None):
    monkeypatch.setenv("REPRO_ENGINE", engine_env)
    monkeypatch.setenv("REPRO_KERNELS", kernels_env)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    system = AcceleratorSystem(
        GRAPH, algorithm, config,
        spans=SpansConfig(sample_rate=8) if spans else None,
    )
    if fault_plan is not None:
        install_faults(system, fault_plan)
    result = system.run(max_iterations=2)
    return system, result


def _fingerprint(result):
    return {
        "cycles": result.cycles,
        "gteps": result.gteps,
        "edges": result.edges_processed,
        "hit_rate": result.hit_rate,
        "dram_bytes_read": result.dram_bytes_read,
        "values": result.values.tobytes(),
    }


class TestSpanStreamDeterminism:
    @pytest.mark.parametrize("algorithm", ["pagerank", "bfs"])
    def test_byte_identical_across_engines_and_kernels(
            self, algorithm, monkeypatch):
        streams = {}
        for engine_env, kernels_env in MODES:
            system, result = _run(
                engine_env, kernels_env, algorithm, monkeypatch
            )
            streams[(engine_env, kernels_env)] = (
                result.cycles, spans_jsonl_bytes(system.tracer)
            )
        reference_cycles, reference = streams[("demand", "vector")]
        # Not vacuous: the stream carries actual sampled spans.
        assert reference.count(b"\n") > 10
        for mode, (cycles, stream) in streams.items():
            assert cycles == reference_cycles, mode
            assert stream == reference, mode

    def test_byte_identical_under_dram_fault_plan(self, monkeypatch):
        streams = {}
        for engine_env, kernels_env in MODES:
            system, _result = _run(
                engine_env, kernels_env, "pagerank", monkeypatch,
                fault_plan=FaultPlan.dram_plan(seed=1),
            )
            streams[(engine_env, kernels_env)] = \
                spans_jsonl_bytes(system.tracer)
        reference = streams[("demand", "vector")]
        assert reference.count(b"\n") > 10
        for mode, stream in streams.items():
            assert stream == reference, mode

    def test_fault_plan_actually_shifts_the_stream(self, monkeypatch):
        """The fault-plan test above must not be comparing no-op runs."""
        clean_sys, _ = _run("demand", "vector", "pagerank", monkeypatch)
        faulty_sys, _ = _run(
            "demand", "vector", "pagerank", monkeypatch,
            fault_plan=FaultPlan.dram_plan(seed=1),
        )
        assert spans_jsonl_bytes(clean_sys.tracer) \
            != spans_jsonl_bytes(faulty_sys.tracer)


class TestTracerNeverPerturbs:
    @pytest.mark.parametrize("engine_env", ["demand", "legacy"])
    def test_tracing_on_matches_off(self, engine_env, monkeypatch):
        _off_sys, off_res = _run(
            engine_env, "vector", "pagerank", monkeypatch, spans=False
        )
        on_sys, on_res = _run(
            engine_env, "vector", "pagerank", monkeypatch, spans=True
        )
        assert _fingerprint(on_res) == _fingerprint(off_res)
        # Not vacuous: the traced run actually collected spans.
        assert on_sys.tracer.spans
        assert on_res.stats["spans"]["spans_completed"] > 0
