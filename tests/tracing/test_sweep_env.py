"""Sweep-runner environment wiring for span tracing (REPRO_SPANS)."""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.experiments.common import (
    run_point,
    spans_from_env,
    telemetry_from_env,
)
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.graph import web_graph
from repro.tracing import SpansConfig

GRAPH = web_graph(900, 4500, seed=11)


def _config():
    return ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )


class TestSpansFromEnv:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPANS", raising=False)
        assert spans_from_env() is None
        monkeypatch.setenv("REPRO_SPANS", "0")
        assert spans_from_env() is None

    def test_enabled_with_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        assert spans_from_env() == SpansConfig()

    def test_rate_and_depth_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "32")
        monkeypatch.setenv("REPRO_SPANS_DEPTH", "17")
        assert spans_from_env() == SpansConfig(
            sample_rate=32, recorder_depth=17
        )


class TestRunPointWiring:
    def test_spans_env_attaches_tracer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "8")
        monkeypatch.delenv("REPRO_RESUME", raising=False)
        system, result = run_point(GRAPH, "pagerank", _config())
        assert system.tracer is not None
        summary = result.stats["spans"]
        assert summary["sample_rate"] == 8
        assert summary["spans_completed"] > 0

    def test_requested_but_absent_summaries_are_explicit_null(
            self, monkeypatch):
        """Journal rows must say ``null``, not omit the key, when the
        environment asked for a summary the run could not produce
        (satellite: resume-path rows with REPRO_TELEMETRY=1)."""
        from repro.experiments.common import _normalize_observability_stats

        class FakeResult:
            stats = {}

        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_SPANS", "1")
        result = FakeResult()
        _normalize_observability_stats(result)
        assert result.stats["telemetry"] is None
        assert result.stats["spans"] is None

        # Present summaries are never clobbered.
        result.stats["telemetry"] = {"cycles": 5}
        _normalize_observability_stats(result)
        assert result.stats["telemetry"] == {"cycles": 5}

        # With collection off, the keys stay absent.
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        monkeypatch.delenv("REPRO_SPANS", raising=False)
        bare = FakeResult()
        bare.stats = {}
        _normalize_observability_stats(bare)
        assert "telemetry" not in bare.stats
        assert "spans" not in bare.stats

    def test_telemetry_env_still_works_alongside(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_SPANS", "1")
        monkeypatch.delenv("REPRO_RESUME", raising=False)
        assert telemetry_from_env() is not None
        system, result = run_point(GRAPH, "pagerank", _config())
        assert result.stats["telemetry"] is not None
        assert result.stats["spans"] is not None
        assert system.telemetry is not None


class TestCliParser:
    def test_engine_and_kernels_flags_parse_once(self, capsys):
        """The shared parser must accept the mode flags exactly once
        (a duplicate add_argument would crash at parser build)."""
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "trace" in out
