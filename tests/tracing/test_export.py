"""Exporters emit what their validators accept -- and only that."""

import json

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.graph import web_graph
from repro.tracing import SpansConfig
from repro.tracing.export import (
    spans_jsonl_bytes,
    validate_flow_trace,
    validate_span_summary,
    validate_spans_jsonl,
    write_flow_trace,
    write_span_summary,
    write_spans_jsonl,
)

GRAPH = web_graph(900, 4500, seed=11)


@pytest.fixture(scope="module")
def traced():
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )
    system = AcceleratorSystem(
        GRAPH, "pagerank", config, spans=SpansConfig(sample_rate=8)
    )
    result = system.run(max_iterations=2)
    return system, result


class TestSpansJsonl:
    def test_roundtrip_validates(self, traced, tmp_path):
        system, _ = traced
        path = write_spans_jsonl(system.tracer, tmp_path / "s.jsonl")
        info = validate_spans_jsonl(path)
        assert info["spans"] == len(system.tracer.spans)
        assert info["meta"]["requests_seen"] == system.tracer.requests_seen

    def test_stream_is_ascii_and_sorted(self, traced):
        system, _ = traced
        blob = spans_jsonl_bytes(system.tracer)
        text = blob.decode("ascii")  # raises on non-ascii
        spans = [json.loads(line) for line in text.splitlines()[1:]]
        keys = [(s["issue"], s["pe"], s["seq"]) for s in spans]
        assert keys == sorted(keys)
        # Internal bookkeeping must not leak into the export.
        assert all("sampled" not in s for s in spans)
        assert all("stages" in s for s in spans)

    def test_validator_rejects_corruption(self, traced, tmp_path):
        system, _ = traced
        blob = spans_jsonl_bytes(system.tracer).decode("ascii")
        lines = blob.splitlines()

        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="spans"):
            validate_spans_jsonl(truncated)

        bad_header = tmp_path / "badheader.jsonl"
        bad_header.write_text(
            "\n".join([json.dumps({"kind": "nope"})] + lines[1:]) + "\n"
        )
        with pytest.raises(ValueError, match="meta header"):
            validate_spans_jsonl(bad_header)

        span = json.loads(lines[1])
        span["stages"]["queue"] += 1  # break the exact accounting
        bad_sum = tmp_path / "badsum.jsonl"
        bad_sum.write_text("\n".join([lines[0], json.dumps(span)]
                                     + lines[2:]) + "\n")
        # Header count is now wrong only if we dropped lines; keep all.
        with pytest.raises(ValueError, match="stage sum"):
            validate_spans_jsonl(bad_sum)


class TestFlowTrace:
    def test_roundtrip_validates(self, traced, tmp_path):
        system, _ = traced
        path = write_flow_trace(system.tracer, tmp_path / "f.json")
        counts = validate_flow_trace(path)
        # One flow start and one finish per completed span.
        assert counts["s"] == len(system.tracer.spans)
        assert counts["f"] == len(system.tracer.spans)
        assert counts["X"] >= len(system.tracer.spans)

    def test_validator_rejects_malformed_flow(self, traced, tmp_path):
        system, _ = traced
        path = write_flow_trace(system.tracer, tmp_path / "f.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        # Drop the first flow-start: its flow now begins with "t"/"f".
        start = next(e for e in events if e.get("ph") == "s")
        events.remove(start)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="malformed"):
            validate_flow_trace(bad)


class TestSpanSummary:
    def test_roundtrip_validates(self, traced, tmp_path):
        system, result = traced
        path = write_span_summary(
            result.stats["spans"], tmp_path / "sum.json"
        )
        summary = validate_span_summary(path)
        assert summary["spans_completed"] == len(system.tracer.spans)
        assert "_totals" in summary["stages"]

    def test_validator_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "sum.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(ValueError, match="missing"):
            validate_span_summary(path)
