"""Flight recorder bounds and its embedding in stall reports."""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.faults.report import build_stall_report, format_stall_report
from repro.faults.watchdog import Watchdog, WatchdogError
from repro.graph import web_graph
from repro.tracing import FlightRecorder, SpansConfig

GRAPH = web_graph(900, 4500, seed=11)


def _traced_system(depth=64):
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )
    return AcceleratorSystem(
        GRAPH, "pagerank", config,
        spans=SpansConfig(sample_rate=8, recorder_depth=depth),
    )


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(depth=4)
        for cycle in range(10):
            recorder.record(cycle, "issue", "pe0", cycle)
        assert recorder.recorded == 10
        assert len(recorder.events) == 4
        tail = recorder.tail()
        assert [e["cycle"] for e in tail] == [6, 7, 8, 9]
        assert [e["cycle"] for e in recorder.tail(2)] == [8, 9]

    def test_format_tail_lines(self):
        recorder = FlightRecorder(depth=4)
        recorder.record(123, "alloc", "private0", 42)
        (line,) = recorder.format_tail()
        assert "123" in line and "alloc" in line and "private0" in line

    def test_recorder_sees_every_event_not_just_sampled(self):
        system = _traced_system()
        system.run(max_iterations=1)
        tracer = system.tracer
        # Far more events than the sampled spans alone could produce.
        assert tracer.recorder.recorded > 2 * tracer.requests_seen
        assert len(tracer.recorder.events) == tracer.recorder.depth


class TestStallReportEmbedding:
    def test_stall_report_carries_the_tail(self):
        system = _traced_system()
        system.run(max_iterations=1)
        report = build_stall_report(system.engine, reason="forced")
        flight = report["flight_recorder"]
        assert flight["depth"] == system.tracer.recorder.depth
        assert flight["recorded"] == system.tracer.recorder.recorded
        assert len(flight["tail"]) == 32
        text = format_stall_report(report)
        assert "flight recorder (last 32 of" in text
        last = flight["tail"][-1]
        assert f"[{last['cycle']:>10}] {last['event']:<12}" in text

    def test_untraced_report_has_no_recorder_block(self):
        config = ArchitectureConfig(
            _design(4, 4, MOMS_TWO_LEVEL, "pagerank", n_channels=2),
            **SCALED_DEFAULTS,
        )
        system = AcceleratorSystem(GRAPH, "pagerank", config)
        system.run(max_iterations=1)
        report = build_stall_report(system.engine)
        assert report["flight_recorder"] is None
        assert "flight recorder" not in format_stall_report(report)

    def test_forced_watchdog_stall_embeds_the_tail(self):
        """A watchdog-raised stall report shows the recorder tail."""
        system = _traced_system()
        system.run(max_iterations=1)
        engine = system.engine
        watchdog = Watchdog(window=1000, min_ticks=0)
        watchdog.begin(engine)
        # Force the no-progress signature the watchdog looks for:
        # ticks advanced, token movement did not.
        engine.component_ticks += watchdog.min_ticks + 1000
        with pytest.raises(WatchdogError) as exc:
            watchdog.check(engine)
        report = exc.value.report
        assert report["flight_recorder"]["tail"]
        assert "flight recorder (last" in str(exc.value)
