"""Traced systems stay snapshot-safe (protocol audit + restore)."""

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.checkpoint import Checkpointer, restore_system, save_snapshot
from repro.checkpoint.protocol import audit_system, ensure_registry
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.graph import web_graph
from repro.tracing import FlightRecorder, SpansConfig, SpanTracer
from repro.tracing.export import spans_jsonl_bytes

GRAPH = web_graph(900, 4500, seed=11)


def _traced_system():
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )
    return AcceleratorSystem(
        GRAPH, "pagerank", config, spans=SpansConfig(sample_rate=8)
    )


class TestSnapshotProtocol:
    def test_tracer_classes_registered(self):
        registry = ensure_registry()
        for cls in (SpanTracer, SpansConfig, FlightRecorder):
            assert cls in registry

    def test_audit_passes_with_tracer_attached(self):
        system = _traced_system()
        seen = audit_system(system)
        assert SpanTracer in seen
        assert FlightRecorder in seen

    def test_snapshot_resume_preserves_span_stream(self, tmp_path):
        """A traced run snapshotted mid-flight resumes bit-identically.

        The resumed half must keep matching in-flight spans (deque
        identity across pickle) and produce the same byte stream as an
        uninterrupted run.
        """
        straight = _traced_system()
        straight_result = straight.run(max_iterations=1)
        reference = spans_jsonl_bytes(straight.tracer)

        system = _traced_system()
        path = str(tmp_path / "traced.snap")
        Checkpointer(path, interval=5000).attach(system)
        system.run(max_iterations=1)
        assert system.engine.checkpointer.last_path is not None

        restored, _header = restore_system(path)
        result = restored.resume_run()
        assert result.cycles == straight_result.cycles
        assert spans_jsonl_bytes(restored.tracer) == reference

    def test_save_restore_keeps_line_owner_identity(self, tmp_path):
        """The fill-channel -> bank map must survive pickling by
        reference (it keys on channel object identity)."""
        system = _traced_system()
        path = str(tmp_path / "fresh.snap")
        save_snapshot(system, path)
        restored, _header = restore_system(path)
        tracer = restored.tracer
        for bank in restored.hierarchy.banks:
            assert tracer._line_owner.get(bank.line_in) == bank.name
