"""Snapshot container: format, corruption, versioning, atomicity."""

import dataclasses
import json
import os
import pickle
import struct

import pytest

from repro.accel.algorithms import get_spec
from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.checkpoint import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_MAGIC,
    Checkpointer,
    SnapshotAuditError,
    SnapshotError,
    audit_system,
    load_snapshot,
    read_header,
    save_snapshot,
)
from repro.graph import web_graph


@pytest.fixture(scope="module")
def system():
    graph = web_graph(200, 800, seed=3)
    config = ArchitectureConfig(
        _design(2, 2, "shared", "bfs", n_channels=2),
        **SCALED_DEFAULTS,
    )
    return AcceleratorSystem(graph, "bfs", config)


def _snap(system, tmp_path, name="a.snap"):
    path = str(tmp_path / name)
    save_snapshot(system, path)
    return path


class TestContainerFormat:
    def test_roundtrip_header(self, system, tmp_path):
        path = _snap(system, tmp_path)
        header = read_header(path)
        assert header["format"] == SNAPSHOT_FORMAT
        assert header["cycle"] == 0
        assert header["algorithm"] == "bfs"
        assert header["organization"] == "shared"
        assert header["engine"] in ("demand", "legacy")
        assert header["payload_bytes"] > 0

    def test_roundtrip_load(self, system, tmp_path):
        path = _snap(system, tmp_path)
        restored, header = load_snapshot(path)
        assert restored.engine.now == system.engine.now
        assert restored.spec.name == system.spec.name
        assert header == read_header(path)

    def test_meta_merged_into_header(self, system, tmp_path):
        path = str(tmp_path / "m.snap")
        save_snapshot(system, path, meta={"ordinal": 7})
        assert read_header(path)["ordinal"] == 7

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.snap")
        with open(path, "wb") as fh:
            fh.write(b"NOPE" + b"\x00" * 64)
        with pytest.raises(SnapshotError, match="bad magic"):
            read_header(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = str(tmp_path / "short.snap")
        with open(path, "wb") as fh:
            fh.write(SNAPSHOT_MAGIC + struct.pack(">I", 500) + b"{}")
        with pytest.raises(SnapshotError, match="truncated snapshot header"):
            read_header(path)

    def test_truncated_payload_rejected(self, system, tmp_path):
        path = _snap(system, tmp_path)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-64])
        with pytest.raises(SnapshotError, match="truncated or corrupted"):
            load_snapshot(path)

    def test_corrupted_payload_rejected_by_checksum(self, system, tmp_path):
        path = _snap(system, tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-10] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            load_snapshot(path)

    def test_newer_format_rejected_with_pointer(self, system, tmp_path):
        path = _snap(system, tmp_path)
        with open(path, "rb") as fh:
            fh.read(len(SNAPSHOT_MAGIC))
            (blob_len,) = struct.unpack(">I", fh.read(4))
            header = json.loads(fh.read(blob_len))
            payload = fh.read()
        header["format"] = SNAPSHOT_FORMAT + 1
        blob = json.dumps(header, sort_keys=True).encode()
        with open(path, "wb") as fh:
            fh.write(SNAPSHOT_MAGIC + struct.pack(">I", len(blob))
                     + blob + payload)
        with pytest.raises(SnapshotError, match="newer"):
            read_header(path)

    def test_header_readable_without_payload_decode(self, system, tmp_path):
        # read_header must not touch the payload at all: corrupt it and
        # the header still parses (triage on a damaged snapshot).
        path = _snap(system, tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-10] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        assert read_header(path)["algorithm"] == "bfs"


class TestAtomicity:
    def test_no_temp_files_left_behind(self, system, tmp_path):
        _snap(system, tmp_path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.snap"]

    def test_overwrite_in_place(self, system, tmp_path):
        path = _snap(system, tmp_path)
        first = read_header(path)
        save_snapshot(system, path, meta={"ordinal": 2})
        assert read_header(path)["ordinal"] == 2
        assert read_header(path)["sha256"] == first["sha256"]
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.snap"]


class TestCheckpointerSpec:
    def test_plain_path(self):
        cp = Checkpointer.from_spec("out/run.snap")
        assert cp.path == "out/run.snap"
        assert cp.interval == Checkpointer("x").interval

    def test_path_with_interval(self):
        cp = Checkpointer.from_spec("out/run.snap:500")
        assert (cp.path, cp.interval) == ("out/run.snap", 500)

    def test_colon_in_path_without_interval(self):
        cp = Checkpointer.from_spec("out:dir/run.snap")
        assert cp.path == "out:dir/run.snap"

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Checkpointer("x", interval=0)


class TestSnapshotProtocol:
    def test_built_system_passes_audit(self, system):
        seen = audit_system(system)
        assert any(cls.__name__ == "AcceleratorSystem" for cls in seen)

    def test_unregistered_class_fails_audit(self, system):
        class Intruder:
            pass

        Intruder.__module__ = "repro.notreal"
        system._intruder = Intruder()
        try:
            with pytest.raises(SnapshotAuditError, match="notreal"):
                audit_system(system)
        finally:
            del system._intruder

    def test_spec_without_recipe_refuses_to_pickle(self):
        spec = dataclasses.replace(get_spec("bfs"), recipe=None)
        with pytest.raises(pickle.PicklingError, match="recipe"):
            pickle.dumps(spec)

    def test_spec_with_recipe_rebuilds(self):
        spec = get_spec("pagerank")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.name == spec.name
        assert clone.recipe == spec.recipe

    def test_unpicklable_state_reported_as_snapshot_error(
            self, system, tmp_path):
        system._poison = lambda: None
        try:
            with pytest.raises(SnapshotError, match="snapshot-safe"):
                save_snapshot(system, str(tmp_path / "p.snap"))
        finally:
            del system._poison
        assert not list(tmp_path.iterdir())  # failed write left nothing
