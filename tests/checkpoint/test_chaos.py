"""Chaos harness: a real SIGKILL mid-run, then resume-equals-baseline."""

import os

import pytest

from repro.checkpoint.chaos import run_chaos


@pytest.mark.parametrize("kills", [1])
def test_chaos_kill_and_resume_bit_identical(kills, tmp_path, monkeypatch):
    # Shrink the chaos workload (the child reads these): the default CI
    # shape would work too, just slower.
    monkeypatch.setenv("CHAOS_NODES", "500")
    monkeypatch.setenv("CHAOS_EDGES", "2500")
    monkeypatch.setenv("CHAOS_MAX_ITERS", "2")
    report = run_chaos(kills=kills, interval=1500, seed=11,
                       workdir=str(tmp_path))
    assert report["failures"] == []
    assert len(report["kills"]) == kills
    for entry in report["kills"]:
        # The child must have died by the chaos SIGKILL (not completed
        # before the kill cycle) and resumed from a real snapshot.
        assert entry["killed"], entry
        assert entry["returncode"] == -9
        assert 0 < entry["resumed_from_cycle"] < entry["kill_cycle"] + 1
        assert entry["match"], entry
        assert entry["result"] == report["baseline"]
    assert os.path.exists(report["report_path"])
