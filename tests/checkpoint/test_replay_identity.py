"""Replay bit-identity: resume-from-snapshot == uninterrupted run.

The contract (DESIGN.md Section 6.7): restoring a mid-run snapshot and
resuming must produce *exactly* the result the uninterrupted run
produces -- same final cycle count, same iteration count, same stats
dict, same output values -- across engines, kernel modes, algorithms,
organizations, and with a fault plan actively injecting mid-window.
"""

import numpy as np
import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.checkpoint import read_header, replay_snapshot
from repro.faults.plan import NAMED_PLANS
from repro.graph import web_graph

GRAPH = web_graph(600, 3000, seed=7)
INTERVAL = 2000


def _config(organization, algorithm):
    return ArchitectureConfig(
        _design(4, 4, organization, algorithm, n_channels=2,
                private_cache_kib=64),
        **SCALED_DEFAULTS,
    )


def _assert_replay_identical(algorithm, organization, tmp_path,
                             fault_plan=None):
    config = _config(organization, algorithm)

    def plan():
        return fault_plan() if fault_plan else None

    baseline = AcceleratorSystem(GRAPH, algorithm, config,
                                 fault_plan=plan()).run(max_iterations=2)

    snap = str(tmp_path / "mid.snap")
    checkpointed = AcceleratorSystem(
        GRAPH, algorithm, config, fault_plan=plan(),
        checkpoint=f"{snap}:{INTERVAL}",
    ).run(max_iterations=2)
    # Checkpointing itself must not perturb the model.
    assert checkpointed.cycles == baseline.cycles

    header = read_header(snap)
    assert 0 < header["cycle"] < baseline.cycles  # genuinely mid-run
    replayed, _ = replay_snapshot(snap)
    assert replayed.cycles == baseline.cycles
    assert replayed.iterations == baseline.iterations
    assert replayed.stats == baseline.stats
    assert np.array_equal(replayed.values, baseline.values)
    return header


class TestEnginesAndKernels:
    @pytest.mark.parametrize("engine", ["demand", "legacy"])
    @pytest.mark.parametrize("kernels", ["vector", "scalar"])
    def test_replay_identity(self, engine, kernels, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        monkeypatch.setenv("REPRO_KERNELS", kernels)
        header = _assert_replay_identical("pagerank", "shared", tmp_path)
        # The snapshot records the modes it was built under.
        assert header["engine"] == engine
        assert header["kernels"] == kernels


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm",
                             ["pagerank", "bfs", "sssp", "scc"])
    def test_replay_identity(self, algorithm, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "demand")
        _assert_replay_identical(algorithm, "two-level", tmp_path)


class TestOrganizations:
    @pytest.mark.parametrize("organization",
                             ["shared", "private", "two-level",
                              "traditional"])
    def test_replay_identity(self, organization, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "demand")
        _assert_replay_identical("pagerank", organization, tmp_path)


class TestUnderFaultPlan:
    @pytest.mark.parametrize("plan_name", sorted(NAMED_PLANS))
    def test_replay_identity_with_active_faults(self, plan_name, tmp_path,
                                                monkeypatch):
        """The snapshot lands mid-run with fault windows armed (and the
        splitmix chain mid-stream); replay must re-attach the plan state
        and keep injecting identically."""
        monkeypatch.setenv("REPRO_ENGINE", "demand")
        _assert_replay_identical(
            "pagerank", "two-level", tmp_path,
            fault_plan=NAMED_PLANS[plan_name],
        )
