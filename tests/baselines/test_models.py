"""Tests for the FabGraph / CPU / GPU analytical baseline models."""

import pytest

from repro.baselines import (
    CPU_PLATFORM,
    FabGraphModel,
    GPU_PLATFORM,
    GpuFrameworkModel,
)
from repro.baselines.cpu import (
    CpuFrameworkModel,
    graphmat_model,
    ligra_model,
    locality_fraction,
)
from repro.graph.datasets import BENCHMARKS
from repro.graph.generators import social_graph, web_graph


class TestFabGraphModel:
    def test_more_channels_more_throughput_until_internal_cap(self):
        model = FabGraphModel()
        n, m = 40_000_000, 900_000_000
        gteps = [model.pagerank_gteps(n, m, c) for c in (1, 2, 4)]
        assert gteps[0] < gteps[1] <= gteps[2] * 1.001
        # Sublinear 1 -> 4 scaling (internal L1<->L2 bandwidth cap).
        assert gteps[2] / gteps[0] < 4.0

    def test_quadratic_tile_term_hurts_large_node_sets(self):
        model = FabGraphModel()
        m = 500_000_000
        small_nodes = model.pagerank_gteps(10_000_000, m, 4)
        large_nodes = model.pagerank_gteps(120_000_000, m, 4)
        assert large_nodes < small_nodes

    def test_edges_bound_small_graphs(self):
        model = FabGraphModel()
        # Node set fits on chip: time == edge streaming time.
        t = model.iteration_time_s(100_000, 10_000_000, 4)
        assert t == pytest.approx(10_000_000 * 4 / (4 * 16e9))

    def test_scaled_model_keeps_ratios(self):
        scaled = FabGraphModel().scaled(1 / 1000)
        assert scaled.bram_capacity_bytes < FabGraphModel().bram_capacity_bytes


class TestCpuModels:
    def test_locality_fraction_separates_graph_families(self):
        web = web_graph(5000, 30000, locality=0.9, seed=1)
        social = social_graph(5000, 30000, seed=2)
        assert locality_fraction(web) > 0.6
        assert locality_fraction(social) < 0.2

    def test_scrambled_graphs_cost_more_bytes_per_edge(self):
        model = ligra_model()
        web = web_graph(5000, 30000, locality=0.9, seed=1)
        social = social_graph(5000, 30000, seed=2)
        assert model.bytes_per_edge(social) > model.bytes_per_edge(web)

    def test_dbg_improves_cpu_model_too(self):
        model = ligra_model()
        social = social_graph(5000, 30000, seed=2)
        assert model.gteps(social, with_dbg=True) > model.gteps(social)

    def test_gteps_bounded_by_bandwidth(self):
        model = graphmat_model()
        g = web_graph(5000, 30000, seed=3)
        gteps = model.gteps(g)
        ceiling = CPU_PLATFORM.bandwidth_bytes_per_s / 8 / 1e9
        assert 0 < gteps < ceiling

    def test_efficiency_metrics_consistent(self):
        model = ligra_model()
        g = web_graph(5000, 30000, seed=3)
        gteps = model.gteps(g)
        assert model.bandwidth_efficiency(g) == pytest.approx(
            gteps / (CPU_PLATFORM.bandwidth_bytes_per_s / 1e9)
        )
        assert model.power_efficiency(g) == pytest.approx(
            gteps / CPU_PLATFORM.power_w
        )

    def test_sssp_costs_more_than_pagerank(self):
        model = ligra_model()
        g = web_graph(5000, 30000, seed=3)
        assert model.gteps(g, "sssp") < model.gteps(g, "pagerank")


class TestGpuModel:
    def test_exactly_five_paper_benchmarks_fit(self):
        """Paper: Gunrock can only run the five smallest benchmarks."""
        model = GpuFrameworkModel()
        fitting = [
            key for key, spec in BENCHMARKS.items()
            if model.fits_in_memory(spec.paper_n, spec.paper_m)
        ]
        assert sorted(fitting) == sorted(["WT", "DB", "UK", "24", "25"])

    def test_weighted_graphs_need_more_memory(self):
        model = GpuFrameworkModel()
        spec = BENCHMARKS["UK"]
        assert model.fits_in_memory(spec.paper_n, spec.paper_m)
        # SSSP weights push UK over the edge? (not necessarily; at
        # least never *increase* feasibility)
        unweighted = model.fits_in_memory(spec.paper_n, spec.paper_m)
        weighted = model.fits_in_memory(spec.paper_n, spec.paper_m,
                                        weighted=True)
        assert not (weighted and not unweighted)

    def test_sssp_frontier_advantage(self):
        """Gunrock's per-node frontier makes SSSP its best kernel."""
        model = GpuFrameworkModel()
        g = web_graph(5000, 30000, seed=3)
        assert model.gteps(g, "sssp") > model.gteps(g, "pagerank")

    def test_platform_constants_match_table4(self):
        assert GPU_PLATFORM.bandwidth_bytes_per_s == 900e9
        assert GPU_PLATFORM.power_w == 300.0
        assert CPU_PLATFORM.bandwidth_bytes_per_s == 233e9
        assert CPU_PLATFORM.power_w == 224.0
