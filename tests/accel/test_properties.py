"""Property-based end-to-end tests: the accelerator equals the math.

Hypothesis drives random graphs and random structural parameters; the
cycle-level system must stay bit-exact against the fixpoint reference
regardless of timing, stalls, structure sizes, or organizations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.baselines.reference import reference_min_label, reference_sssp
from repro.fabric.design import ORGANIZATIONS
from repro.graph import Graph


def random_graph(draw_data, max_nodes=200, max_edges=600):
    n = draw_data.draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw_data.draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw_data.draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return Graph(n, rng.integers(0, n, m), rng.integers(0, n, m))


def make_config(organization, algorithm, data=None):
    n_banks = 0 if organization == "private" else 2
    return ArchitectureConfig(
        _design(2, n_banks, organization, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )


class TestEndToEndProperties:
    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_scc_exact_on_random_graphs(self, data):
        graph = random_graph(data)
        organization = data.draw(st.sampled_from(ORGANIZATIONS))
        system = AcceleratorSystem(
            graph, "scc", make_config(organization, "scc")
        )
        result = system.run()
        expected, _ = reference_min_label(graph)
        assert np.array_equal(result.values.astype(np.int64), expected)

    @given(st.data())
    @settings(max_examples=6, deadline=None)
    def test_sssp_exact_on_random_weighted_graphs(self, data):
        graph = random_graph(data, max_edges=300)
        seed = data.draw(st.integers(min_value=0, max_value=1000))
        graph = graph.with_weights(np.random.default_rng(seed))
        source = data.draw(
            st.integers(min_value=0, max_value=graph.n_nodes - 1)
        )
        system = AcceleratorSystem(
            graph, "sssp", make_config("two-level", "sssp"), source=source
        )
        result = system.run()
        expected, _ = reference_sssp(graph, source)
        assert np.array_equal(result.values.astype(np.int64), expected)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=8, max_value=64))
    @settings(max_examples=6, deadline=None)
    def test_tiny_structures_stay_correct(self, id_pool, subentry_scale):
        """Starved ID pools / subentry stores stall but never corrupt."""
        rng = np.random.default_rng(13)
        graph = Graph(100, rng.integers(0, 100, 400),
                      rng.integers(0, 100, 400)).with_weights(rng)
        config = make_config("two-level", "sssp")
        config.id_pool_size = id_pool
        config.structure_scale = subentry_scale / 4096
        system = AcceleratorSystem(graph, "sssp", config, source=0)
        result = system.run()
        expected, _ = reference_sssp(graph, 0)
        assert np.array_equal(result.values.astype(np.int64), expected)

    @given(st.sampled_from(["none", "hash", "dbg", "both"]))
    @settings(max_examples=4, deadline=None)
    def test_preprocessing_never_changes_results(self, variant):
        rng = np.random.default_rng(7)
        graph = Graph(300, rng.integers(0, 300, 900),
                      rng.integers(0, 300, 900))
        system = AcceleratorSystem(
            graph, "scc", make_config("two-level", "scc"),
            use_hashing=variant in ("hash", "both"),
            use_dbg=variant in ("dbg", "both"),
        )
        result = system.run()
        expected, _ = reference_min_label(graph)
        assert np.array_equal(result.values.astype(np.int64), expected)
