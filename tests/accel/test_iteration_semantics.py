"""Iteration semantics: synchronous swap, async propagation, frontiers."""

import numpy as np

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.baselines.reference import reference_bfs, reference_pagerank
from repro.graph import Graph


def chain_graph(n=600):
    """0 -> 1 -> 2 -> ... -> n-1: worst case for propagation depth."""
    src = np.arange(n - 1)
    return Graph(n, src, src + 1, name="chain")


def config(algorithm, **extra):
    return ArchitectureConfig(
        _design(2, 2, "two-level", algorithm, n_channels=2, **extra),
        **SCALED_DEFAULTS,
    )


class TestSynchronousSemantics:
    def test_pagerank_iteration_count_is_exact(self):
        g = chain_graph(200)
        for iters in (1, 2, 4):
            system = AcceleratorSystem(g, "pagerank", config("pagerank"))
            result = system.run(max_iterations=iters)
            assert result.iterations == iters
            expected = reference_pagerank(g, iters)
            np.testing.assert_allclose(result.values, expected, rtol=1e-4)

    def test_sync_reads_previous_iteration_only(self):
        """One synchronous sweep moves information exactly one hop."""
        g = chain_graph(50)
        system = AcceleratorSystem(g, "pagerank", config("pagerank"))
        one = system.run(max_iterations=1).values
        expected = reference_pagerank(g, 1)
        np.testing.assert_allclose(one, expected, rtol=1e-4)


class TestAsynchronousSemantics:
    def test_async_bfs_on_chain_converges_fast(self):
        """use_local_src + async lets labels sweep through an interval
        in one pass: a 600-node chain needs far fewer than 600 sweeps."""
        g = chain_graph(600)
        expected, _ = reference_bfs(g, 0)
        # Without hashing, an interval holds a contiguous chain segment
        # and async + use_local_src sweeps through it in one pass.
        system = AcceleratorSystem(g, "bfs", config("scc"), source=0,
                                   use_hashing=False)
        result = system.run()
        assert np.array_equal(result.values.astype(np.int64), expected)
        assert result.iterations < 30
        # Hashing scatters the chain, costing sweeps but never
        # correctness -- still far fewer than one sweep per hop.
        hashed = AcceleratorSystem(g, "bfs", config("scc"), source=0,
                                   use_hashing=True).run()
        assert np.array_equal(hashed.values.astype(np.int64), expected)
        assert hashed.iterations < 150

    def test_active_source_pruning_reduces_work(self):
        """Later sweeps only stream shards with active sources."""
        g = chain_graph(600)
        system = AcceleratorSystem(g, "bfs", config("scc"), source=0)
        result = system.run()
        worst_case = g.n_edges * result.iterations
        assert result.edges_processed < worst_case

    def test_unreachable_nodes_keep_infinity(self):
        from repro.accel.algorithms import INFINITY
        g = Graph(100, [0, 1], [1, 2], name="mostly-isolated")
        system = AcceleratorSystem(g, "bfs", config("scc"), source=0)
        values = system.run().values.astype(np.int64)
        assert values[2] == 2
        assert (values[3:] == INFINITY).all()


class TestConvergence:
    def test_converged_system_stops_immediately(self):
        """A second run request after convergence queues zero jobs."""
        g = chain_graph(100)
        system = AcceleratorSystem(g, "scc", config("scc"))
        first = system.run()
        assert first.iterations >= 1
        # The scheduler's active flags are now all clear.
        assert not system.scheduler.active_srcs.any()

    def test_deterministic_iteration_counts(self):
        g = chain_graph(300)
        runs = [
            AcceleratorSystem(g, "bfs", config("scc"), source=0).run()
            for _ in range(2)
        ]
        assert runs[0].iterations == runs[1].iterations
        assert runs[0].cycles == runs[1].cycles
