"""Unit tests for PE plumbing: burst requester, config scaling, phases."""

import numpy as np
import pytest

from repro.accel.config import (
    ArchitectureConfig,
    SCALED_DEFAULTS,
    _design,
    named_architectures,
)
from repro.accel.pe import BurstRequester
from repro.accel.system import AcceleratorSystem
from repro.graph import Graph, web_graph
from repro.mem import MemorySystem
from repro.sim import Channel, Engine


def make_requester(n_channels=2, capacity=4):
    engine = Engine()
    mem = MemorySystem(engine, 1 << 16, n_channels=n_channels)
    ports = [engine.add_channel(Channel(capacity)) for _ in range(n_channels)]
    resp = engine.add_channel(Channel(16))
    return BurstRequester(mem, ports, resp), ports


class TestBurstRequester:
    def test_beats_for_aligned(self):
        requester, _ = make_requester()
        assert requester.beats_for(0, 64) == 1
        assert requester.beats_for(0, 2048) == 32

    def test_beats_for_unaligned_split(self):
        """A burst crossing a granule boundary mid-line adds a beat."""
        requester, _ = make_requester()
        # 80 bytes starting 40 bytes before the 2048 boundary: pieces of
        # 40 and 40 bytes, one beat each.
        assert requester.beats_for(2048 - 40, 80) == 2
        # Fully inside one granule: 80 unaligned bytes -> 2 beats.
        assert requester.beats_for(24, 80) == 2

    def test_can_issue_respects_per_channel_capacity(self):
        requester, ports = make_requester(capacity=1)
        assert requester.can_issue(0, 64)
        requester.issue(0, 64, tag="a")
        # Channel 0 is now full for this cycle.
        assert not requester.can_issue(0, 64)
        # Channel 1 (addresses in the second granule) still has room.
        assert requester.can_issue(2048, 64)

    def test_issue_returns_piece_count(self):
        requester, ports = make_requester()
        assert requester.issue(0, 64, tag="x") == 1
        assert requester.issue(2048 - 64, 128, tag="y") == 2

    def test_write_issue_slices_data(self):
        requester, ports = make_requester()
        data = np.arange(128, dtype=np.uint8)
        requester.issue(2048 - 64, 128, tag="w", is_write=True, data=data)
        # Pieces are staged until end-of-cycle; commit to inspect.
        for port in ports:
            port.commit()
        assert np.array_equal(ports[0].pop().data, data[:64])
        assert np.array_equal(ports[1].pop().data, data[64:])


class TestConfigScaling:
    def test_scaled_for_guarantees_jobs_per_pe(self):
        config = named_architectures("scc", 2)["16/16 two-level"]
        graph = web_graph(5000, 20000, seed=1)
        scaled = config.scaled_for(graph)
        n_jobs = -(-graph.n_nodes // scaled.nodes_per_dst_interval)
        assert n_jobs >= 2 * config.design.n_pes

    def test_scaled_for_keeps_line_multiple(self):
        config = named_architectures("scc", 2)["16/16 two-level"]
        for n in (100, 1000, 5000, 50_000):
            graph = Graph(n, [0], [n - 1])
            scaled = config.scaled_for(graph)
            assert scaled.nodes_per_dst_interval % 16 == 0
            assert scaled.nodes_per_src_interval >= \
                scaled.nodes_per_dst_interval

    def test_scaled_for_noop_on_large_graphs(self):
        config = named_architectures("scc", 2)["16/16 two-level"]
        graph = Graph(100_000, [0], [1])
        assert config.scaled_for(graph) is config

    def test_named_architectures_cover_organizations(self):
        archs = named_architectures("pagerank")
        organizations = {c.design.organization for c in archs.values()}
        assert organizations == {"shared", "private", "two-level",
                                 "traditional"}

    def test_design_validation(self):
        with pytest.raises(ValueError):
            _design(0, 4, "shared", "scc")


class TestPEPhaseAccounting:
    def make_system(self, **kwargs):
        graph = web_graph(800, 4000, seed=31)
        config = ArchitectureConfig(
            _design(2, 2, "two-level", "scc", n_channels=2),
            **SCALED_DEFAULTS,
        )
        return AcceleratorSystem(graph, "scc", config, **kwargs), graph

    def test_phase_cycles_recorded(self):
        system, _ = self.make_system()
        system.run()
        for pe in system.pes:
            phases = pe.stats.cycles_by_phase
            # Every busy PE passed through all the job phases.
            if pe.stats.jobs_completed:
                assert {"init_vin", "pointers", "stream",
                        "writeback"} <= set(phases)
            assert pe.is_idle()

    def test_jobs_balance_dynamically(self):
        """With jobs >> PEs, no PE finishes the run idle-starved."""
        system, _ = self.make_system()
        system.run()
        jobs = [pe.stats.jobs_completed for pe in system.pes]
        assert all(j > 0 for j in jobs)

    def test_edge_accounting_matches_graph(self):
        system, graph = self.make_system()
        result = system.run(max_iterations=1)
        assert result.edges_processed == \
            sum(pe.stats.edges_processed for pe in system.pes)
        assert result.edges_processed <= graph.n_edges

    def test_local_plus_remote_covers_all_edges(self):
        system, graph = self.make_system()
        result = system.run(max_iterations=1)
        total = result.stats["local_reads"] + result.stats["moms_reads"]
        assert total == result.edges_processed
