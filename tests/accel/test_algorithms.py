"""Tests for algorithm specs, the template interpreter, and references."""

import networkx as nx
import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.accel.algorithms import (
    DAMPING,
    INFINITY,
    bfs_spec,
    get_spec,
    pagerank_spec,
    scc_spec,
    sssp_spec,
)
from repro.baselines.reference import (
    reference_bfs,
    reference_min_label,
    reference_pagerank,
    reference_sssp,
    run_template_reference,
)
from repro.graph import Graph, web_graph


def small_graph(seed=3):
    return web_graph(300, 1800, seed=seed)


class TestSpecs:
    def test_table1_parameters(self):
        """The control knobs match paper Table I."""
        pr, scc, sssp = pagerank_spec(), scc_spec(), sssp_spec()
        assert not pr.use_local_src and pr.always_active and pr.synchronous
        assert scc.use_local_src and not scc.always_active
        assert not scc.synchronous
        assert sssp.use_local_src and sssp.weighted
        assert pr.gather_latency == 4
        assert scc.gather_latency == 1
        assert pr.use_const and not scc.use_const
        assert pr.bram_node_bits == 64 and scc.bram_node_bits == 32

    def test_get_spec_lookup(self):
        assert get_spec("pagerank").name == "pagerank"
        assert get_spec("sssp", source=5).initial_values(
            small_graph()
        )[5] == 0
        with pytest.raises(ValueError):
            get_spec("pagerankx")

    def test_pagerank_codec_round_trip(self):
        spec = pagerank_spec()
        for value in (0.0, 1.5, 1e-7, 3.25):
            assert spec.decode(spec.encode(value)) == pytest.approx(
                value, rel=1e-6
            )

    def test_pagerank_initial_values_normalized(self):
        g = Graph(4, [0, 0, 1], [1, 2, 3])
        spec = pagerank_spec()
        y = spec.initial_values(g).view(np.float32)
        # Node 0: degree 2 -> y = 0.85 * (1/4) / 2.
        assert y[0] == pytest.approx(DAMPING * 0.25 / 2)
        # Sink nodes store 0 (never read as sources).
        assert y[2] == 0 and y[3] == 0

    def test_sssp_gather_saturates(self):
        spec = sssp_spec()
        assert spec.gather(INFINITY, INFINITY, 200) == INFINITY
        assert spec.gather(INFINITY - 1, INFINITY, 200) == INFINITY
        assert spec.gather(5, 100, 7) == 12
        assert spec.gather(5, 3, 7) == 3

    def test_scc_gather_is_min(self):
        spec = scc_spec()
        assert spec.gather(3, 7, 0) == 3
        assert spec.gather(9, 7, 0) == 7


class TestReferences:
    def test_pagerank_matches_networkx_ranking(self):
        """Same top-k ordering as networkx pagerank (semantics differ
        slightly on dangling mass, so compare rankings not values)."""
        g = small_graph()
        ours = reference_pagerank(g, n_iterations=30)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(g.n_nodes))
        nxg.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
        theirs = nx.pagerank(nxg, alpha=DAMPING, max_iter=200)
        top_ours = set(np.argsort(ours)[-10:].tolist())
        top_theirs = set(
            sorted(theirs, key=theirs.get)[-10:]
        )
        assert len(top_ours & top_theirs) >= 7

    def test_pagerank_scores_are_probability_like(self):
        g = small_graph()
        scores = reference_pagerank(g, 20)
        assert (scores > 0).all()

    def test_min_label_matches_reachability(self):
        """Label of v == min node id that can reach v (including v)."""
        g = Graph(6, [0, 1, 2, 4], [1, 2, 0, 5])
        labels, _ = reference_min_label(g)
        # 0,1,2 form a cycle -> all get 0; 3 isolated; 5 <- 4.
        assert list(labels) == [0, 0, 0, 3, 4, 4]

    def test_sssp_matches_scipy_dijkstra(self):
        g = small_graph().with_weights(np.random.default_rng(4))
        # Our generators emit multigraphs; csr_matrix sums parallel
        # edges while Bellman-Ford takes their min, so deduplicate
        # keeping the minimum weight.  Weights are bumped by 1 because
        # csr treats explicit zeros as missing edges.
        keys = g.src * g.n_nodes + g.dst
        order = np.lexsort((g.weights, keys))
        unique_mask = np.ones(len(keys), dtype=bool)
        unique_mask[1:] = keys[order][1:] != keys[order][:-1]
        keep = order[unique_mask]
        g2 = Graph(g.n_nodes, g.src[keep], g.dst[keep],
                   g.weights[keep] + 1)
        dist2, _ = reference_sssp(g2, source=0)
        matrix2 = csr_matrix(
            (np.asarray(g2.weights, dtype=np.float64), (g2.src, g2.dst)),
            shape=(g2.n_nodes, g2.n_nodes),
        )
        scipy_dist = dijkstra(matrix2, indices=0)
        reachable = np.isfinite(scipy_dist)
        assert np.array_equal(
            dist2[reachable], scipy_dist[reachable].astype(np.int64)
        )
        assert (dist2[~reachable] == INFINITY).all()

    def test_bfs_distances(self):
        g = Graph(5, [0, 1, 2, 0], [1, 2, 3, 4])
        dist, _ = reference_bfs(g, source=0)
        assert list(dist) == [0, 1, 2, 3, 1]


class TestTemplateInterpreter:
    def test_pagerank_template_matches_vector_reference(self):
        g = small_graph()
        values, iters = run_template_reference(
            get_spec("pagerank"), g, max_iterations=5,
            nodes_per_src_interval=64, nodes_per_dst_interval=32,
        )
        expected = reference_pagerank(g, 5)
        assert iters == 5
        np.testing.assert_allclose(values, expected, rtol=1e-4)

    def test_scc_template_converges_to_fixpoint(self):
        g = small_graph(seed=9)
        values, iters = run_template_reference(
            get_spec("scc"), g, nodes_per_src_interval=128,
            nodes_per_dst_interval=64,
        )
        expected, _ = reference_min_label(g)
        assert np.array_equal(values.astype(np.int64), expected)

    def test_sssp_template_matches_bellman_ford(self):
        g = small_graph(seed=5).with_weights(np.random.default_rng(6))
        values, _ = run_template_reference(
            get_spec("sssp", source=0), g,
            nodes_per_src_interval=128, nodes_per_dst_interval=64,
        )
        expected, _ = reference_sssp(g, 0)
        assert np.array_equal(values.astype(np.int64), expected)

    def test_async_converges_faster_or_equal(self):
        """use_local_src + async propagates within an interval in one
        pass, so the template typically needs fewer sweeps than the
        synchronous fixpoint reference."""
        g = small_graph(seed=7)
        _, ref_iters = reference_min_label(g)
        _, template_iters = run_template_reference(
            get_spec("scc"), g, nodes_per_src_interval=512,
            nodes_per_dst_interval=512,
        )
        assert template_iters <= ref_iters

    def test_interval_shapes_do_not_change_results(self):
        g = small_graph(seed=8)
        results = []
        for ns, nd in [(64, 32), (128, 128), (512, 64)]:
            values, _ = run_template_reference(
                get_spec("scc"), g, nodes_per_src_interval=ns,
                nodes_per_dst_interval=nd,
            )
            results.append(values)
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])
