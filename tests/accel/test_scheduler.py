"""Tests for the dynamic job scheduler."""

import numpy as np

from repro.accel.scheduler import Job, Scheduler
from repro.graph import Graph, partition_edges, web_graph
from repro.sim import Channel, Engine


def make_scheduler(n_nodes=1024, n_edges=4096, ns=256, nd=128):
    engine = Engine()
    graph = web_graph(n_nodes, n_edges, seed=2)
    part = partition_edges(graph, ns, nd)
    jobs = engine.add_channel(Channel(1, name="jobs"))
    done = engine.add_channel(Channel(8, name="done"))
    scheduler = engine.add_component(Scheduler(jobs, done, part))
    return engine, scheduler, jobs, done, part


class TestScheduler:
    def test_first_iteration_queues_all_live_intervals(self):
        engine, scheduler, jobs, done, part = make_scheduler()
        queued = scheduler.start_iteration(always_active=True)
        live = (part.shard_sizes().sum(axis=0) > 0).sum()
        assert queued == live

    def test_jobs_issued_one_per_cycle(self):
        engine, scheduler, jobs, done, part = make_scheduler()
        scheduler.start_iteration(always_active=True)
        engine._step()
        engine._step()
        assert jobs.can_pop()
        first = jobs.pop()
        assert isinstance(first, Job)
        assert scheduler.jobs_issued >= 1

    def test_completion_tracking(self):
        engine, scheduler, jobs, done, part = make_scheduler()
        n = scheduler.start_iteration(always_active=True)
        finished = 0
        for _ in range(20_000):
            engine._step()
            while jobs.can_pop():
                job = jobs.pop()
                done.push((job.d, True))
                finished += 1
            if scheduler.iteration_done():
                break
        assert finished == n
        assert scheduler.iteration_done()
        assert scheduler.jobs_completed == n

    def test_updated_flags_activate_sources(self):
        engine, scheduler, jobs, done, part = make_scheduler()
        scheduler.start_iteration(always_active=False)
        # Complete every job with updated=False except interval 0.
        for _ in range(20_000):
            engine._step()
            while jobs.can_pop():
                job = jobs.pop()
                done.push((job.d, job.d == 0))
            if scheduler.iteration_done():
                break
        assert scheduler.finish_iteration()  # work remains
        # Only the source intervals overlapping dst interval 0 active.
        lo, hi = part.dst_interval_bounds(0)
        expected = np.zeros(part.q_src, dtype=bool)
        expected[lo // part.n_src:(hi - 1) // part.n_src + 1] = True
        assert np.array_equal(scheduler.active_srcs, expected)

    def test_convergence_when_nothing_updates(self):
        engine, scheduler, jobs, done, part = make_scheduler()
        scheduler.start_iteration(always_active=False)
        for _ in range(20_000):
            engine._step()
            while jobs.can_pop():
                done.push((jobs.pop().d, False))
            if scheduler.iteration_done():
                break
        assert not scheduler.finish_iteration()
        assert scheduler.start_iteration(always_active=False) == 0

    def test_inactive_sources_skip_jobs(self):
        engine, scheduler, jobs, done, part = make_scheduler()
        scheduler.active_srcs[:] = False
        scheduler.active_srcs[0] = True
        queued = scheduler.start_iteration(always_active=False)
        live = (part.shard_sizes()[0] > 0).sum()
        assert queued == live
