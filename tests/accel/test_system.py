"""End-to-end accelerator tests: every organization, every algorithm.

Each test builds a full system (DRAM + fabric + MOMS + PEs + scheduler)
on a small graph and checks bit-exact (integer algorithms) or
tolerance (PageRank) agreement with the software references.
"""

import numpy as np
import pytest

from repro.accel import named_architectures
from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.baselines.reference import (
    reference_bfs,
    reference_min_label,
    reference_pagerank,
    reference_sssp,
)
from repro.fabric.design import (
    MOMS_PRIVATE,
    MOMS_SHARED,
    MOMS_TRADITIONAL,
    MOMS_TWO_LEVEL,
)
from repro.graph import web_graph
from repro.graph.generators import social_graph


GRAPH = web_graph(1500, 7000, seed=21)
WEIGHTED = GRAPH.with_weights(np.random.default_rng(42))


def arch(organization, algorithm, n_pes=4, n_banks=4, n_channels=2,
         **extra):
    return ArchitectureConfig(
        _design(n_pes, n_banks if organization != MOMS_PRIVATE else 0,
                organization, algorithm, n_channels, **extra),
        **SCALED_DEFAULTS,
    )


class TestAllOrganizationsCorrect:
    @pytest.mark.parametrize("organization", [
        MOMS_SHARED, MOMS_PRIVATE, MOMS_TWO_LEVEL, MOMS_TRADITIONAL,
    ])
    def test_scc_exact(self, organization):
        system = AcceleratorSystem(
            GRAPH, "scc", arch(organization, "scc")
        )
        result = system.run()
        expected, _ = reference_min_label(GRAPH)
        assert np.array_equal(result.values.astype(np.int64), expected)

    def test_pagerank_matches_reference(self):
        system = AcceleratorSystem(
            GRAPH, "pagerank", arch(MOMS_TWO_LEVEL, "pagerank")
        )
        result = system.run(max_iterations=3)
        expected = reference_pagerank(GRAPH, 3)
        np.testing.assert_allclose(result.values, expected, rtol=1e-4)

    def test_sssp_exact(self):
        system = AcceleratorSystem(
            WEIGHTED, "sssp", arch(MOMS_TWO_LEVEL, "sssp"), source=0
        )
        result = system.run()
        expected, _ = reference_sssp(WEIGHTED, 0)
        assert np.array_equal(result.values.astype(np.int64), expected)

    def test_bfs_extension_exact(self):
        system = AcceleratorSystem(
            GRAPH, "bfs", arch(MOMS_TWO_LEVEL, "scc"), source=3
        )
        result = system.run()
        expected, _ = reference_bfs(GRAPH, 3)
        assert np.array_equal(result.values.astype(np.int64), expected)


class TestPreprocessingVariants:
    def test_hashing_preserves_results(self):
        base = AcceleratorSystem(GRAPH, "scc", arch(MOMS_TWO_LEVEL, "scc"),
                                 use_hashing=False).run()
        hashed = AcceleratorSystem(GRAPH, "scc", arch(MOMS_TWO_LEVEL, "scc"),
                                   use_hashing=True).run()
        assert np.array_equal(base.values, hashed.values)

    def test_dbg_preserves_results(self):
        scrambled = social_graph(1200, 6000, seed=33)
        plain = AcceleratorSystem(scrambled, "scc",
                                  arch(MOMS_TWO_LEVEL, "scc"),
                                  use_hashing=True, use_dbg=False).run()
        dbg = AcceleratorSystem(scrambled, "scc",
                                arch(MOMS_TWO_LEVEL, "scc"),
                                use_hashing=True, use_dbg=True).run()
        assert np.array_equal(plain.values, dbg.values)

    def test_hashing_balances_jobs(self):
        """Hashing evens the per-interval edge counts on clustered graphs."""
        hashed = AcceleratorSystem(GRAPH, "scc", arch(MOMS_TWO_LEVEL, "scc"),
                                   use_hashing=True)
        plain = AcceleratorSystem(GRAPH, "scc", arch(MOMS_TWO_LEVEL, "scc"),
                                  use_hashing=False)
        hashed_counts = hashed.partitioning.dst_interval_edge_counts()
        plain_counts = plain.partitioning.dst_interval_edge_counts()
        assert hashed_counts.std() <= plain_counts.std()


class TestRunResultAccounting:
    def test_pagerank_processes_all_edges_every_iteration(self):
        system = AcceleratorSystem(GRAPH, "pagerank",
                                   arch(MOMS_TWO_LEVEL, "pagerank"))
        result = system.run(max_iterations=2)
        assert result.iterations == 2
        assert result.edges_processed == 2 * GRAPH.n_edges
        assert result.cycles > 0
        assert result.gteps > 0
        assert result.seconds > 0

    def test_scc_converges_and_stops(self):
        system = AcceleratorSystem(GRAPH, "scc", arch(MOMS_TWO_LEVEL, "scc"))
        result = system.run(max_iterations=100)
        # Converged before the budget (small graph).
        assert result.iterations < 100

    def test_dram_traffic_accounted(self):
        system = AcceleratorSystem(GRAPH, "scc", arch(MOMS_TWO_LEVEL, "scc"))
        result = system.run()
        # At least the edges and node arrays moved once.
        assert result.dram_bytes_read > GRAPH.n_edges * 4
        assert result.dram_bytes_written > 0
        assert 0 <= result.hit_rate <= 1
        assert result.bandwidth_gb_s > 0

    def test_stats_keys(self):
        system = AcceleratorSystem(GRAPH, "scc", arch(MOMS_TWO_LEVEL, "scc"))
        result = system.run()
        for key in ("raw_stalls", "moms_reads", "local_reads", "jobs",
                    "stall_breakdown", "dram_lines_single"):
            assert key in result.stats

    def test_deterministic_cycle_counts(self):
        runs = [
            AcceleratorSystem(GRAPH, "scc", arch(MOMS_TWO_LEVEL, "scc"))
            .run().cycles
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestArchitectureBehaviour:
    def test_local_reads_used_by_scc_not_pagerank(self):
        scc_run = AcceleratorSystem(GRAPH, "scc",
                                    arch(MOMS_TWO_LEVEL, "scc")).run()
        pr_run = AcceleratorSystem(GRAPH, "pagerank",
                                   arch(MOMS_TWO_LEVEL, "pagerank")).run(
            max_iterations=1
        )
        assert scc_run.stats["local_reads"] > 0
        assert pr_run.stats["local_reads"] == 0

    def test_pagerank_suffers_raw_stalls(self):
        """The 4-cycle fp pipeline stalls on same-destination bursts."""
        result = AcceleratorSystem(GRAPH, "pagerank",
                                   arch(MOMS_TWO_LEVEL, "pagerank")).run(
            max_iterations=1
        )
        assert result.stats["raw_stalls"] > 0

    def test_private_moms_issues_more_dram_lines_than_two_level(self):
        private = AcceleratorSystem(
            GRAPH, "pagerank",
            arch(MOMS_PRIVATE, "pagerank",
                 private_cache_kib=0)
        ).run(max_iterations=1)
        two_level = AcceleratorSystem(
            GRAPH, "pagerank", arch(MOMS_TWO_LEVEL, "pagerank")
        ).run(max_iterations=1)
        assert private.stats["dram_lines_single"] >= \
            two_level.stats["dram_lines_single"]

    def test_named_architectures_instantiable(self):
        for name, config in named_architectures("scc", n_channels=2).items():
            system = AcceleratorSystem(GRAPH, "scc", config)
            assert system.frequency_mhz > 80, name

    def test_sssp_uses_id_pool(self):
        config = arch(MOMS_TWO_LEVEL, "sssp")
        config.id_pool_size = 16  # tiny pool -> stalls but stays correct
        system = AcceleratorSystem(WEIGHTED, "sssp", config, source=0)
        result = system.run()
        expected, _ = reference_sssp(WEIGHTED, 0)
        assert np.array_equal(result.values.astype(np.int64), expected)
        assert result.stats["id_stalls"] > 0
