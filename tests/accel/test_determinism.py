"""Determinism and engine-equivalence regression on a pinned workload.

Two guarantees the performance work must never break:

* the simulator is a deterministic function of its inputs -- two
  identical runs produce identical cycle counts and GTEPS;
* the demand-driven engine is a *wall-clock* optimization only -- on
  the same workload it reports bit-identical cycles, throughput, and
  DRAM traffic as the all-tick legacy engine (``REPRO_ENGINE=legacy``),
  for both the cuckoo-MSHR (stateful retry) and associative
  (traditional) bank variants.
"""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TRADITIONAL, MOMS_TWO_LEVEL
from repro.graph import web_graph

GRAPH = web_graph(1200, 6000, seed=7)


def _run(organization, engine_env, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", engine_env)
    config = ArchitectureConfig(
        _design(4, 4, organization, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )
    system = AcceleratorSystem(GRAPH, "pagerank", config)
    result = system.run(max_iterations=2)
    return system, result


def _fingerprint(system, result):
    return {
        "cycles": result.cycles,
        "gteps": result.gteps,
        "edges": result.edges_processed,
        "hit_rate": result.hit_rate,
        "dram_bytes_read": result.dram_bytes_read,
        "dram_lines_single": result.stats["dram_lines_single"],
        "values": result.values.tobytes(),
    }


class TestDeterminism:
    def test_identical_runs_identical_results(self, monkeypatch):
        prints = [
            _fingerprint(*_run(MOMS_TWO_LEVEL, "demand", monkeypatch))
            for _ in range(2)
        ]
        assert prints[0] == prints[1]

    @pytest.mark.parametrize("organization", [
        MOMS_TWO_LEVEL, MOMS_TRADITIONAL,
    ])
    def test_demand_engine_matches_legacy(self, organization, monkeypatch):
        demand_sys, demand_res = _run(organization, "demand", monkeypatch)
        legacy_sys, legacy_res = _run(organization, "legacy", monkeypatch)
        assert _fingerprint(demand_sys, demand_res) == \
            _fingerprint(legacy_sys, legacy_res)
        # The equivalence is not vacuous: the demand engine must have
        # actually skipped ticks the legacy engine executed.
        assert demand_sys.engine.component_ticks < \
            legacy_sys.engine.component_ticks
