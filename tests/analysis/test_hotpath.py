"""The call-graph hot-path classifier against the real tree.

Pins the property the hot-scoped rules (R1/R2/R3) depend on: the
engine seeds exist, every per-cycle component module is classified
hot, and the O(1)-per-sweep-point layers (experiments, graph
preprocessing, baselines) never are.
"""

import pathlib

from repro.analysis.engine import build_context, collect_sources

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


class TestHotPathIndex:
    @classmethod
    def setup_class(cls):
        sources, errors = collect_sources([SRC])
        assert not errors, errors
        cls.sources = {source.rel: source for source in sources}
        cls.ctx = build_context(sources)

    def _hot_quals(self, rel):
        return self.ctx.hot.hot_qualnames(rel)

    def test_engine_seeds_are_hot(self):
        quals = self._hot_quals("src/repro/sim/engine.py")
        assert "Engine._step" in quals
        assert "Engine.wake" in quals

    def test_tick_methods_reached_through_dynamic_dispatch(self):
        # _step calls component.tick(self); name-based resolution must
        # mark every per-cycle component's tick hot.
        for rel, qual in (
            ("src/repro/core/bank.py", "MomsBank.tick"),
            ("src/repro/accel/pe.py", "ProcessingElement.tick"),
            ("src/repro/mem/dram.py", "DramChannel.tick"),
            ("src/repro/accel/scheduler.py", "Scheduler.tick"),
        ):
            assert qual in self._hot_quals(rel), (rel, qual)

    def test_transitive_helpers_are_hot(self):
        # tick -> _tick_stream -> ... (PE state machine) and the
        # channel commit path both ride the call graph.
        assert "ProcessingElement._tick_stream" in self._hot_quals(
            "src/repro/accel/pe.py")
        assert any(
            qual.endswith(".commit")
            for qual in self._hot_quals("src/repro/sim/channel.py")
        )

    def test_cold_layers_never_classified_hot(self):
        for rel in (
            "src/repro/experiments/common.py",
            "src/repro/graph/generators.py",
            "src/repro/baselines/cpu.py",
            "src/repro/report.py",
            "src/repro/profiling.py",
            "src/repro/analysis/engine.py",
        ):
            assert self._hot_quals(rel) == (), rel

    def test_hot_files_cover_the_legacy_lint_module_list(self):
        # The module list the old standalone AST test hard-coded must
        # be a subset of what the classifier derives.
        hot_files = set(self.ctx.hot.hot_files())
        for legacy in (
            "src/repro/core/bank.py",
            "src/repro/core/hierarchy.py",
            "src/repro/mem/dram.py",
            "src/repro/accel/pe.py",
            "src/repro/accel/scheduler.py",
        ):
            assert legacy in hot_files, legacy

    def test_pooled_classes_discovered_from_tree(self):
        assert {"MomsRequest", "MomsResponse",
                "MemRequest", "MemResponse"} <= self.ctx.pooled_classes
