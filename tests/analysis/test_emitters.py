"""Emitter golden files: the serialized formats are frozen.

A fixed synthetic LintResult must serialize to byte-identical JSON and
SARIF against the checked-in goldens, so an accidental envelope change
(key rename, ordering change, schema drift) fails loudly.  Bump
LINT_SCHEMA / TOOL_VERSION and regenerate deliberately when the format
is *meant* to change (see make_fixture_result's docstring).
"""

import json
import pathlib

import pytest

from repro.analysis import lint_text
from repro.analysis.emitters import emit_json, emit_sarif, emit_text
from repro.analysis.findings import Finding, LintResult
from repro.analysis.rules import RULES_BY_KEY

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden"

# The whole-program passes each freeze the SARIF their POSITIVE
# fixture produces (regenerate() rewrites these too).
WHOLE_PROGRAM_RULES = ("r11", "r12", "r13", "r14")


def make_fixture_result():
    """The frozen input behind the goldens.

    Regenerate after deliberate format changes with::

        PYTHONPATH=src:tests python - <<'EOF'
        from analysis.test_emitters import regenerate
        regenerate()
        EOF
    """
    findings = [
        Finding(
            rule="R2", name="single-token-channel", severity="error",
            path="src/repro/core/bank.py", line=42, col=9,
            message="'resp_out.push(...)' inside a loop in hot function "
                    "'MomsBank.tick'",
            hint="use push_many or the fields API",
        ),
        Finding(
            rule="R5", name="float-cycle-compare", severity="warning",
            path="src/repro/mem/dram.py", line=7, col=12,
            message="equality comparison involving float arithmetic in "
                    "cycle/latency code",
            hint="keep cycle math integral",
        ),
    ]
    suppressed = [
        Finding(
            rule="R1", name="nondeterminism", severity="warning",
            path="src/repro/fabric/crossbar.py", line=61, col=38,
            message="hot function 'Crossbar.tick' iterates a '.items()' "
                    "view",
            hint="iterate sorted() views",
            suppressed=True,
        ),
    ]
    result = LintResult(
        findings=findings,
        suppressed=suppressed,
        files_scanned=3,
        rules_run=("R1", "R2", "R5"),
    )
    return result


def regenerate():
    result = make_fixture_result()
    GOLDEN.mkdir(exist_ok=True)
    (GOLDEN / "findings.json").write_text(
        emit_json(result, show_suppressed=True), encoding="utf-8")
    (GOLDEN / "findings.sarif").write_text(
        emit_sarif(result), encoding="utf-8")
    for key in WHOLE_PROGRAM_RULES:
        rule = RULES_BY_KEY[key]
        result = lint_text(rule.POSITIVE, rules=(rule,))
        (GOLDEN / f"{key}.sarif").write_text(
            emit_sarif(result), encoding="utf-8")


class TestEmitterGoldens:
    def test_json_matches_golden(self):
        expected = (GOLDEN / "findings.json").read_text(encoding="utf-8")
        assert emit_json(make_fixture_result(),
                         show_suppressed=True) == expected

    def test_sarif_matches_golden(self):
        expected = (GOLDEN / "findings.sarif").read_text(encoding="utf-8")
        assert emit_sarif(make_fixture_result()) == expected

    def test_sarif_is_valid_enough(self):
        log = json.loads(emit_sarif(make_fixture_result()))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
                "R11", "R12", "R13", "R14"} <= rule_ids
        results = run["results"]
        # Active findings carry no suppressions; the inline-suppressed
        # one is present but marked.
        kinds = {
            result["ruleId"]:
                [s["kind"] for s in result.get("suppressions", [])]
            for result in results
        }
        assert kinds["R2"] == []
        assert kinds["R1"] == ["inSource"]
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].startswith("src/repro/")

    @pytest.mark.parametrize("key", WHOLE_PROGRAM_RULES)
    def test_whole_program_positive_sarif_frozen(self, key):
        # Each whole-program pass's POSITIVE fixture serializes to the
        # checked-in SARIF byte-for-byte: message wording, anchor line,
        # and envelope are all part of the pass's contract.
        rule = RULES_BY_KEY[key]
        result = lint_text(rule.POSITIVE, rules=(rule,))
        expected = (GOLDEN / f"{key}.sarif").read_text(encoding="utf-8")
        assert emit_sarif(result) == expected

    def test_text_format_shape(self):
        text = emit_text(make_fixture_result(), show_suppressed=True)
        assert "src/repro/core/bank.py:42:9: R2 error:" in text
        assert "[suppressed]" in text
        assert text.endswith(
            "2 finding(s) (1 error, 1 warning), 1 suppressed, "
            "0 baselined, 3 file(s), rules R1,R2,R5\n"
        )
