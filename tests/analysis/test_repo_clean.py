"""The tree must satisfy its own contracts (migrated tier-1 guard).

This replaces tests/test_hot_path_lint.py: the one ad-hoc AST rule it
carried (single-token channel calls in hot loops) is now simlint R2,
generalized to the call-graph hot set, and the whole catalog runs
repo-wide.  A regression shows up as a named file:line in the assert
message instead of a slow benchmark or a flaky replay.
"""

import pathlib

from repro.analysis import lint_paths, selfcheck
from repro.analysis.emitters import emit_text

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _format(result):
    return emit_text(result)


class TestRepoContracts:
    def test_selfcheck_guards_the_guards(self):
        # Every rule must still catch its own positive fixture and
        # accept its negative -- a rule that stopped firing would make
        # the clean-tree asserts below vacuous.
        assert selfcheck() == []

    def test_hot_modules_stay_on_bulk_channel_apis(self):
        # The original tier-1 lint, reborn: R2 over the classifier-
        # derived hot set, expecting zero active findings.
        result = lint_paths([SRC], rules="R2")
        assert not result.findings, _format(result)

    def test_whole_catalog_clean_at_head(self):
        # Acceptance bar for the subsystem: every true positive in the
        # tree is fixed or carries a justified inline suppression.
        result = lint_paths([SRC])
        assert not result.errors, result.errors
        assert not result.findings, _format(result)

    def test_suppressions_stay_few_and_justified(self):
        # Suppressions are a budget, not a loophole: every entry must
        # carry a justification (the ``--`` clause) and the total must
        # stay small enough to review by hand.  Raise the bound
        # consciously if a legitimate new exemption lands.
        result = lint_paths([SRC])
        assert len(result.suppressed) <= 8, _format(result)
        for finding in result.suppressed:
            source_line = (SRC.parents[1] / finding.path).read_text(
                encoding="utf-8").splitlines()
            window = "\n".join(
                source_line[max(0, finding.line - 6):finding.line])
            assert "simlint: disable" in window, (finding.path,
                                                  finding.line)
            tail = window.split("simlint: disable", 1)[1]
            assert "--" in tail, (
                f"{finding.path}:{finding.line}: suppression without a "
                f"-- justification clause"
            )
