"""End-to-end ``python -m repro lint`` behavior through main().

The positive-fixture tests scaffold a miniature package tree (an
engine module seeding the hot-path classifier plus one fixture module
in a hot package) so each rule's own POSITIVE snippet drives the CLI
to a non-zero exit -- the acceptance bar from DESIGN.md 6.5.
"""

import json
import time

import pytest

from repro.__main__ import main
from repro.analysis import ALL_RULES

# Minimal engine module: gives the classifier its _step/wake seeds and
# the component.tick(self) dispatch that marks fixture ticks hot.
ENGINE = (
    "class Engine:\n"
    "    def _step(self):\n"
    "        for component in self.components:\n"
    "            component.tick(self)\n"
    "    def wake(self, component, when):\n"
    "        self.heap.append((when, component))\n"
)


def scaffold(tmp_path, snippet):
    """Write a lintable mini-tree; returns the path to pass --paths."""
    (tmp_path / "repro" / "sim").mkdir(parents=True, exist_ok=True)
    (tmp_path / "repro" / "core").mkdir(parents=True, exist_ok=True)
    (tmp_path / "repro" / "sim" / "engine.py").write_text(
        ENGINE, encoding="utf-8")
    (tmp_path / "repro" / "core" / "fixture.py").write_text(
        snippet, encoding="utf-8")
    return tmp_path


class TestLintCli:
    def test_repo_tree_lints_clean_at_head(self):
        # The headline acceptance criterion: the shipped tree passes
        # its own linter with the default (error) gate.
        assert main(["lint"]) == 0

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.id)
    def test_each_positive_fixture_fails_the_cli(self, rule, tmp_path):
        root = scaffold(tmp_path, rule.POSITIVE)
        # --fail-on warning so warning-severity rules (R5) gate too.
        code = main([
            "lint", "--rules", rule.id, "--fail-on", "warning",
            "--paths", str(root),
        ])
        assert code == 1, f"{rule.id} positive fixture did not fail"

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.id)
    def test_each_negative_fixture_passes_the_cli(self, rule, tmp_path):
        root = scaffold(tmp_path, rule.NEGATIVE)
        code = main([
            "lint", "--rules", rule.id, "--fail-on", "warning",
            "--paths", str(root),
        ])
        assert code == 0, f"{rule.id} negative fixture failed"

    def test_unknown_rule_is_a_tool_error(self):
        assert main(["lint", "--rules", "R99"]) == 2

    def test_unparseable_file_is_a_tool_error(self, tmp_path):
        root = scaffold(tmp_path, "def broken(:\n")
        assert main(["lint", "--paths", str(root)]) == 2

    def test_fail_on_never_reports_but_passes(self, tmp_path):
        rule = ALL_RULES[0]
        root = scaffold(tmp_path, rule.POSITIVE)
        code = main([
            "lint", "--rules", rule.id, "--fail-on", "never",
            "--paths", str(root),
        ])
        assert code == 0

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out
            assert rule.name in out

    def test_sarif_output_is_valid_json_on_stdout(self, capsys):
        assert main(["lint", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        # The repo's justified inline suppressions ride along marked.
        results = log["runs"][0]["results"]
        assert all(
            entry["suppressions"][0]["kind"] == "inSource"
            for entry in results
        )

    def test_quick_selfchecks_within_budget(self):
        started = time.monotonic()
        assert main(["lint", "--quick"]) == 0
        assert time.monotonic() - started < 30.0


class TestBaselineFlow:
    BAD = ALL_RULES[1].POSITIVE  # R2: single-token push in hot loop

    def test_write_then_apply_roundtrip(self, tmp_path):
        root = scaffold(tmp_path, self.BAD)
        baseline = tmp_path / "accepted.json"
        assert main([
            "lint", "--paths", str(root),
            "--write-baseline", str(baseline),
        ]) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["accepted"], "baseline recorded no findings"
        # With the baseline applied the same tree passes...
        assert main([
            "lint", "--paths", str(root), "--baseline", str(baseline),
        ]) == 0

    def test_new_violation_still_fails_with_baseline(self, tmp_path):
        root = scaffold(tmp_path, self.BAD)
        baseline = tmp_path / "accepted.json"
        main(["lint", "--paths", str(root),
              "--write-baseline", str(baseline)])
        fresh = (
            "def tick(self, engine):\n"
            "    while self.pending_reads:\n"
            "        self.req_out.push(self.pending_reads.popleft())\n"
        )
        (root / "repro" / "core" / "newcode.py").write_text(
            fresh, encoding="utf-8")
        assert main([
            "lint", "--paths", str(root), "--baseline", str(baseline),
        ]) == 1

    def test_corrupt_baseline_degrades_not_crashes(self, tmp_path, capsys):
        root = scaffold(tmp_path, self.BAD)
        baseline = tmp_path / "accepted.json"
        baseline.write_text("{ this is not json", encoding="utf-8")
        # Tolerant parsing: the run proceeds as if unbaselined (exit 1
        # for the real finding, never exit 2) and says why on stderr.
        assert main([
            "lint", "--paths", str(root), "--baseline", str(baseline),
        ]) == 1
        assert "note" in capsys.readouterr().err

    def test_missing_baseline_is_a_note_not_an_error(self, tmp_path):
        root = scaffold(tmp_path, ALL_RULES[0].NEGATIVE)
        assert main([
            "lint", "--paths", str(root),
            "--baseline", str(tmp_path / "nope.json"),
        ]) == 0

    def test_unknown_rule_id_warns_with_location(self, tmp_path, capsys):
        # Tolerant parsing: a retired/renamed rule id in the baseline
        # is a warning naming the offending entry's line, never a
        # tool error, and the rest of the baseline still applies.
        root = scaffold(tmp_path, ALL_RULES[0].NEGATIVE)
        baseline = tmp_path / "accepted.json"
        payload = {
            "schema": 1,
            "accepted": [
                {"rule": "R99", "path": "repro/core/x.py",
                 "message": "retired finding", "line": 3},
            ],
        }
        baseline.write_text(json.dumps(payload, indent=2),
                            encoding="utf-8")
        assert main([
            "lint", "--paths", str(root), "--baseline", str(baseline),
        ]) == 0
        err = capsys.readouterr().err
        assert "unknown rule 'R99'" in err
        lineno = next(
            number
            for number, line in enumerate(
                baseline.read_text(encoding="utf-8").splitlines(), 1)
            if '"rule": "R99"' in line
        )
        assert f"accepted.json:{lineno}:" in err


class TestChangedScope:
    @staticmethod
    def _git(root, *args):
        import subprocess

        proc = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True, text=True,
            env={**__import__("os").environ,
                 "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_changed_reports_only_diff_scope(self, tmp_path):
        root = scaffold(tmp_path, ALL_RULES[0].NEGATIVE)
        self._git(root, "init", "-q")
        self._git(root, "add", "-A")
        self._git(root, "commit", "-qm", "seed")
        bad = (
            "def tick(self, engine):\n"
            "    while self.pending_reads:\n"
            "        self.req_out.push(self.pending_reads.popleft())\n"
        )
        victim = root / "repro" / "core" / "newcode.py"
        victim.write_text(bad, encoding="utf-8")
        # Uncommitted violation: in the changed scope, so it gates.
        assert main(["lint", "--paths", str(root), "--changed"]) == 1
        # Committed (nothing changed any more): same tree passes,
        # because --changed narrows reporting to the empty diff.
        self._git(root, "add", "-A")
        self._git(root, "commit", "-qm", "accepted")
        assert main(["lint", "--paths", str(root), "--changed"]) == 0
        # Without --changed the violation still gates: scoping is a
        # reporting filter, not a weaker analysis.
        assert main(["lint", "--paths", str(root)]) == 1

    def test_changed_without_git_degrades_to_full_lint(
            self, tmp_path, capsys):
        rule = ALL_RULES[1]
        root = scaffold(tmp_path, rule.POSITIVE)
        code = main(["lint", "--paths", str(root), "--changed"])
        assert code == 1  # degraded to a full lint, finding reported
        assert "--changed" in capsys.readouterr().err


class TestCacheDir:
    def test_cache_roundtrip_through_cli(self, tmp_path, capsys):
        root = scaffold(tmp_path / "tree", ALL_RULES[0].NEGATIVE)
        cache = tmp_path / "cache"
        assert main(["lint", "--paths", str(root),
                     "--cache-dir", str(cache)]) == 0
        assert "cache miss" in capsys.readouterr().err
        assert main(["lint", "--paths", str(root),
                     "--cache-dir", str(cache)]) == 0
        assert "cache hit" in capsys.readouterr().err

    def test_edit_invalidates_fingerprint(self, tmp_path, capsys):
        root = scaffold(tmp_path / "tree", ALL_RULES[0].NEGATIVE)
        cache = tmp_path / "cache"
        main(["lint", "--paths", str(root), "--cache-dir", str(cache)])
        capsys.readouterr()
        (root / "repro" / "core" / "fixture.py").write_text(
            "def quiet():\n    return 0\n", encoding="utf-8")
        assert main(["lint", "--paths", str(root),
                     "--cache-dir", str(cache)]) == 0
        assert "cache miss" in capsys.readouterr().err
