"""Per-rule fixtures: positive fires, negative clean, suppressible.

The generic sweep drives every rule through its own built-in POSITIVE
and NEGATIVE snippets (the same ones ``--quick`` self-checks), then
proves a trailing ``# simlint: disable=<id>`` neutralizes the positive.
The per-rule classes below pin the sharper distinctions each rule is
supposed to draw.
"""

import pytest

from repro.analysis import ALL_RULES, lint_text


def _only(result):
    assert len(result.findings) == 1, [
        f.message for f in result.findings
    ]
    return result.findings[0]


class TestEveryRuleFixture:
    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.id)
    def test_positive_fires(self, rule):
        result = lint_text(rule.POSITIVE, rules=(rule,))
        assert result.findings, f"{rule.id} positive fixture is clean"
        assert all(f.rule == rule.id for f in result.findings)

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.id)
    def test_negative_clean(self, rule):
        result = lint_text(rule.NEGATIVE, rules=(rule,))
        assert not result.findings, [f.message for f in result.findings]

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.id)
    def test_inline_suppression(self, rule):
        base = lint_text(rule.POSITIVE, rules=(rule,))
        line = base.findings[0].line
        lines = rule.POSITIVE.splitlines()
        lines[line - 1] += f"  # simlint: disable={rule.id}"
        result = lint_text("\n".join(lines) + "\n", rules=(rule,))
        hits = [f for f in result.findings if f.line == line]
        assert not hits, [f.message for f in hits]
        assert any(f.line == line for f in result.suppressed)

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.id)
    def test_suppression_by_name_and_all(self, rule):
        base = lint_text(rule.POSITIVE, rules=(rule,))
        line = base.findings[0].line
        for token in (rule.name, "all"):
            lines = rule.POSITIVE.splitlines()
            lines[line - 1] += f"  # simlint: disable={token}"
            result = lint_text("\n".join(lines) + "\n", rules=(rule,))
            assert not [f for f in result.findings if f.line == line]


class TestNondeterminismR1:
    def test_seeded_random_instance_allowed(self):
        clean = (
            "import random\n"
            "def tick(self, engine):\n"
            "    rng = random.Random(1234)\n"
            "    return rng\n"
        )
        assert not lint_text(clean, rules="R1").findings

    def test_unseeded_random_instance_flagged(self):
        bad = (
            "import random\n"
            "def tick(self, engine):\n"
            "    return random.Random()\n"
        )
        assert lint_text(bad, rules="R1").findings

    def test_from_import_resolves(self):
        bad = (
            "from random import shuffle\n"
            "def tick(self, engine):\n"
            "    shuffle(self.queue)\n"
        )
        assert lint_text(bad, rules="R1").findings

    def test_datetime_now_flagged(self):
        bad = (
            "import datetime\n"
            "def tick(self, engine):\n"
            "    return datetime.datetime.now()\n"
        )
        assert lint_text(bad, rules="R1").findings

    def test_set_iteration_flagged_sorted_allowed(self):
        bad = (
            "def tick(self, engine):\n"
            "    waiting = set(self.ids)\n"
            "    for item in waiting:\n"
            "        self.serve(item)\n"
        )
        finding = _only(lint_text(bad, rules="R1"))
        assert "set" in finding.message
        clean = bad.replace("in waiting:", "in sorted(waiting):")
        assert not lint_text(clean, rules="R1").findings

    def test_dict_view_is_warning_severity(self):
        warm = (
            "def tick(self, engine):\n"
            "    for key, value in self.buckets.items():\n"
            "        self.serve(key, value)\n"
        )
        finding = _only(lint_text(warm, rules="R1"))
        assert finding.severity == "warning"

    def test_cold_function_ignored_without_force_hot(self):
        cold = (
            "import time\n"
            "def report(self):\n"
            "    return time.monotonic()\n"
        )
        assert not lint_text(cold, rules="R1", force_hot=False).findings


class TestChannelDisciplineR2:
    def test_varying_and_freelist_receivers_allowed(self):
        good = (
            "def tick(self, engine):\n"
            "    for channel, item in pieces:\n"
            "        ports[channel].push(item)\n"
            "        token = pool.pop()\n"
        )
        assert not lint_text(good, rules="R2").findings

    def test_indexed_pop_allowed(self):
        good = (
            "def tick(self, engine):\n"
            "    while self.backlog:\n"
            "        job = self.backlog.pop(0)\n"
        )
        assert not lint_text(good, rules="R2").findings

    def test_fabric_modules_exempt(self):
        bad = (
            "def tick(self, engine):\n"
            "    for item in batch:\n"
            "        self.out.push(item)\n"
        )
        flagged = lint_text(bad, rules="R2", rel="repro/core/x.py")
        assert flagged.findings
        exempt = lint_text(bad, rules="R2", rel="repro/fabric/x.py")
        assert not exempt.findings


class TestPoolingR3:
    def test_register_pool_discovery_drives_the_rule(self):
        unregistered = (
            "class SpillRequest:\n"
            "    pass\n"
            "def tick(self, engine):\n"
            "    return SpillRequest()\n"
        )
        assert not lint_text(unregistered, rules="R3").findings
        registered = (
            "from repro.core.messages import register_pool\n"
            + unregistered.replace(
                "class SpillRequest:\n    pass\n",
                "class SpillRequest:\n    pass\n"
                "register_pool(SpillRequest)\n",
            )
        )
        assert lint_text(registered, rules="R3").findings

    def test_acquire_helpers_allowed(self):
        good = (
            "from repro.core.messages import register_pool\n"
            "class SpillRequest:\n"
            "    pass\n"
            "register_pool(SpillRequest)\n"
            "def _acquire_spill(addr):\n"
            "    return SpillRequest(addr)\n"
        )
        assert not lint_text(good, rules="R3").findings


class TestHookGatingR4:
    def test_alias_guard_recognized(self):
        good = (
            "def tick(self, engine):\n"
            "    tele = self._tele\n"
            "    if tele is not None:\n"
            "        tele.bank_before_tick(self, engine.now)\n"
        )
        assert not lint_text(good, rules="R4").findings

    def test_boolop_guard_recognized(self):
        good = (
            "def tick(self, engine):\n"
            "    if self._fault is not None and self._fault.blocked():\n"
            "        return\n"
        )
        assert not lint_text(good, rules="R4").findings

    def test_ternary_is_none_guard_recognized(self):
        good = (
            "def tick(self, engine):\n"
            "    extra = 0 if self._fault is None "
            "else self._fault.extra_latency(engine.now)\n"
        )
        assert not lint_text(good, rules="R4").findings

    def test_wrong_branch_flagged(self):
        bad = (
            "def tick(self, engine):\n"
            "    if self._tele is None:\n"
            "        self._tele.bank_before_tick(self, engine.now)\n"
        )
        assert lint_text(bad, rules="R4").findings

    def test_truthiness_guard_not_accepted(self):
        bad = (
            "def tick(self, engine):\n"
            "    if self._tele:\n"
            "        self._tele.bank_before_tick(self, engine.now)\n"
        )
        assert lint_text(bad, rules="R4").findings

    def test_instrumentation_packages_exempt(self):
        code = (
            "def check(self, engine):\n"
            "    self._ledger.verify(engine)\n"
        )
        assert lint_text(code, rules="R4",
                         rel="repro/faults/ledger.py").findings == []
        assert lint_text(code, rules="R4",
                         rel="repro/core/bank.py").findings


class TestFloatCompareR5:
    def test_division_equality_flagged(self):
        finding = _only(lint_text(
            "def f(used, total):\n"
            "    return used / total == 1\n",
            rules="R5",
        ))
        assert finding.severity == "warning"

    def test_integer_compare_clean(self):
        assert not lint_text(
            "def f(used, total):\n"
            "    return used * 2 == total and used // 2 != total\n",
            rules="R5",
        ).findings


class TestMutableDefaultR6:
    def test_kwonly_defaults_covered(self):
        bad = (
            "def f(*, seen=set()):\n"
            "    return seen\n"
        )
        assert lint_text(bad, rules="R6").findings

    def test_call_defaults_covered(self):
        bad = (
            "def f(seen=dict()):\n"
            "    return seen\n"
        )
        assert lint_text(bad, rules="R6").findings


class TestSlotsR7:
    def test_dataclass_slots_accepted(self):
        good = (
            "from dataclasses import dataclass\n"
            "@dataclass(slots=True)\n"
            "class SpillToken:\n"
            "    addr: int\n"
        )
        assert not lint_text(good, rules="R7").findings

    def test_non_token_class_ignored(self):
        good = (
            "class BankParams:\n"
            "    def __init__(self):\n"
            "        self.ways = 4\n"
        )
        assert not lint_text(good, rules="R7").findings


class TestFusionSafetyR10:
    def test_while_loop_read_flagged(self):
        bad = (
            "def step_n(self, engine, budget):\n"
            "    m = 0\n"
            "    while m < budget:\n"
            "        self.stamp(engine.now)\n"
            "        m += 1\n"
            "    return m\n"
        )
        finding = _only(lint_text(bad, rules="R10"))
        assert "frozen" in finding.message

    def test_comprehension_read_flagged(self):
        bad = (
            "def step_n(self, engine, budget):\n"
            "    self.trace.extend(engine.now for _ in range(budget))\n"
            "    return budget\n"
        )
        assert lint_text(bad, rules="R10").findings

    def test_first_generator_source_allowed(self):
        good = (
            "def step_n(self, engine, budget):\n"
            "    rows = [row for row in self.window(engine.now)]\n"
            "    return len(rows)\n"
        )
        assert not lint_text(good, rules="R10").findings

    def test_loop_condition_read_flagged(self):
        bad = (
            "def step_n(self, engine, budget):\n"
            "    while engine.now < self.deadline:\n"
            "        self.advance()\n"
            "    return 0\n"
        )
        assert lint_text(bad, rules="R10").findings

    def test_per_cycle_tick_not_covered(self):
        good = (
            "def tick(self, engine):\n"
            "    for item in self.backlog:\n"
            "        self.stamp(engine.now, item)\n"
        )
        assert not lint_text(good, rules="R10").findings

    def test_renamed_engine_param_tracked(self):
        bad = (
            "def step_n(self, eng, budget):\n"
            "    for _ in range(budget):\n"
            "        self.stamp(eng.now)\n"
            "    return budget\n"
        )
        assert lint_text(bad, rules="R10").findings


class TestSchemaLiteralR8:
    def test_string_version_not_flagged(self):
        good = (
            "def sarif_envelope():\n"
            "    return {'version': '2.1.0'}\n"
        )
        assert not lint_text(good, rules="R8").findings

    def test_constant_reference_clean_literal_flagged(self):
        bad = (
            "def row():\n"
            "    return {'schema': 3}\n"
        )
        assert lint_text(bad, rules="R8").findings
