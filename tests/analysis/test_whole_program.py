"""The whole-program passes (R11-R14) beyond their built-in fixtures.

Covers the distinctions the per-file sweep cannot: transitive
containment for snapshot completeness, interprocedural hook flow,
declined-hook region pruning for fusion purity, schema-pin drift --
plus the cross-rule suppression form and the static/dynamic agreement
bar for R11 (the same rogue class caught by lint and by the runtime
``audit_system``).
"""

import pathlib
import shutil

import pytest

from repro.analysis import lint_paths, lint_text

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

# All four fused hooks declined in one terminating Or-chain, plus the
# space watchers: the canonical "nothing instrumented, fuse away" gate.
DECLINE_ALL = (
    "        if (self._fault is not None or self._tele is not None\n"
    "                or self._ledger is not None\n"
    "                or self._trace is not None\n"
    "                or self._space_subs):\n"
    "            return 0\n"
)


def rules_of(result):
    return sorted({f.rule for f in result.findings})


class TestSnapshotCompletenessR11:
    def test_transitive_containment_walked(self):
        # Outer is registered; Inner only reaches system state through
        # Outer's constructor, and must still be accounted for.
        text = (
            "class Inner:\n"
            "    pass\n"
            "class Outer:\n"
            "    def __init__(self):\n"
            "        self.inner = Inner()\n"
            "def _register_all(register):\n"
            "    for cls, note in (\n"
            "        (Outer, 'wrapper'),\n"
            "    ):\n"
            "        register(cls, note)\n"
            "class AcceleratorSystem:\n"
            "    def __init__(self):\n"
            "        self.outer = Outer()\n"
        )
        (finding,) = lint_text(text, rules="R11").findings
        assert "'Inner'" in finding.message
        assert "'Outer'" in finding.message  # names the containing class

    def test_container_append_counts_as_state(self):
        text = (
            "class Row:\n"
            "    pass\n"
            "class AcceleratorSystem:\n"
            "    def _build_rows(self):\n"
            "        self.rows.append(Row())\n"
        )
        (finding,) = lint_text(text, rules="R11").findings
        assert "'Row'" in finding.message

    def test_excluded_table_is_honored(self):
        text = (
            "SNAPSHOT_EXCLUDED = {'Scratch': 'rebuilt on restore'}\n"
            "class Scratch:\n"
            "    pass\n"
            "class AcceleratorSystem:\n"
            "    def __init__(self):\n"
            "        self.scratch = Scratch()\n"
        )
        assert not lint_text(text, rules="R11").findings


class TestInterproceduralHookR12:
    def test_two_hop_forwarding_flagged(self):
        text = (
            "def emit(tele, event):\n"
            "    tele.record(event)\n"
            "def relay(sink, event):\n"
            "    emit(sink, event)\n"
            "class Bank:\n"
            "    def tick(self, engine):\n"
            "        relay(self._tele, 'bank')\n"
        )
        (finding,) = lint_text(text, rules="R12").findings
        assert "self._tele" in finding.message
        assert "'relay'" in finding.message

    def test_instrumentation_packages_exempt(self):
        text = (
            "def emit(tele, event):\n"
            "    tele.record(event)\n"
            "class Bank:\n"
            "    def tick(self, engine):\n"
            "        emit(self._tele, 'bank')\n"
        )
        assert lint_text(text, rules="R12",
                         rel="repro/core/bank.py").findings
        assert not lint_text(text, rules="R12",
                             rel="repro/telemetry/probe.py").findings


class TestFusionPurityR13:
    def test_declined_hook_prunes_call_region(self):
        # `self._ledger.issue(...)` is dead inside the fused window
        # (the decline returned 0); name dispatch must not drag every
        # other `issue` method's pushes into the region.
        text = (
            "class Other:\n"
            "    def issue(self, item):\n"
            "        self.out.push(item)\n"
            "class Pipe:\n"
            "    def step_n(self, engine, budget):\n"
            + DECLINE_ALL +
            "        self._schedule(budget)\n"
            "        return budget\n"
            "    def _schedule(self, budget):\n"
            "        if self._ledger is not None:\n"
            "            self._ledger.issue(budget)\n"
        )
        assert not lint_text(text, rules="R13").findings

    def test_push_in_reachable_helper_flagged(self):
        text = (
            "class Pipe:\n"
            "    def step_n(self, engine, budget):\n"
            + DECLINE_ALL +
            "        self._drain(budget)\n"
            "        return budget\n"
            "    def _drain(self, budget):\n"
            "        self.out.push(budget)\n"
        )
        (finding,) = lint_text(text, rules="R13").findings
        assert "push" in finding.message
        assert "'Pipe._drain'" in finding.message

    def test_pop_is_covered_by_space_decline(self):
        body = (
            "class Pipe:\n"
            "    def step_n(self, engine, budget):\n"
            "{decline}"
            "        self.inbox.pop()\n"
            "        return budget\n"
        )
        covered = body.format(decline=DECLINE_ALL)
        assert not lint_text(covered, rules="R13").findings
        uncovered = body.format(decline=(
            "        if (self._fault is not None or self._tele is not None\n"
            "                or self._ledger is not None\n"
            "                or self._trace is not None):\n"
            "            return 0\n"
        ))
        (finding,) = lint_text(uncovered, rules="R13").findings
        assert "pop" in finding.message

    def test_per_element_now_in_helper_flagged(self):
        text = (
            "class Pipe:\n"
            "    def step_n(self, engine, budget):\n"
            + DECLINE_ALL +
            "        self._stamp(engine, budget)\n"
            "        return budget\n"
            "    def _stamp(self, engine, budget):\n"
            "        for i in range(budget):\n"
            "            self.log(engine.now)\n"
        )
        (finding,) = lint_text(text, rules="R13").findings
        assert "now" in finding.message


class TestSchemaCoherenceR14:
    def test_stale_version_pin_reported(self):
        text = (
            "ROW_SCHEMA = 2\n"
            "def as_row():\n"
            "    return {'schema': ROW_SCHEMA, 'alpha': 1}\n"
        )
        (finding,) = lint_text(text, rules="R14").findings
        assert "re-pin" in finding.message

    def test_key_change_without_bump_names_the_drift(self):
        text = (
            "ROW_SCHEMA = 1\n"
            "def as_row():\n"
            "    return {'schema': ROW_SCHEMA, 'beta': 2}\n"
        )
        (finding,) = lint_text(text, rules="R14").findings
        assert "version bump" in finding.message
        assert "beta" in finding.message    # added
        assert "alpha" in finding.message   # removed

    def test_reader_of_unwritten_key_flagged(self):
        text = (
            "ROW_SCHEMA = 1\n"
            "def as_row():\n"
            "    return {'schema': ROW_SCHEMA, 'alpha': 1}\n"
            "def read_row(row):\n"
            "    return row.get('gamma', 0)\n"
        )
        (finding,) = lint_text(text, rules="R14").findings
        assert "gamma" in finding.message

    def test_real_contracts_hold_at_head(self):
        result = lint_paths([SRC], rules="R14")
        assert not result.findings, [f.message for f in result.findings]


class TestCrossRuleSuppression:
    BAD_LINE = "        self.scratch = self._tele.make(Scratch())\n"
    TEXT = (
        "class Scratch:\n"
        "    pass\n"
        "class AcceleratorSystem:\n"
        "    def step_n(self, engine, budget):\n"
        "{line}"
        "        return budget\n"
    )

    def test_one_line_fires_both_rules(self):
        result = lint_text(self.TEXT.format(line=self.BAD_LINE),
                           rules="R11,R13")
        assert rules_of(result) == ["R11", "R13"]
        assert len({f.line for f in result.findings}) == 1

    def test_one_comment_suppresses_both(self):
        line = self.BAD_LINE.rstrip("\n") \
            + "  # simlint: disable=R11,R13 -- fixture scratch\n"
        result = lint_text(self.TEXT.format(line=line), rules="R11,R13")
        assert not result.findings
        assert sorted({f.rule for f in result.suppressed}) == ["R11", "R13"]


class TestStaticDynamicAgreementR11:
    """The same rogue class caught by lint and by audit_system."""

    ROGUE = (
        "\n\nclass RogueLintBuffer:\n"
        "    def __init__(self):\n"
        "        self.rows = []\n"
    )

    def test_lint_catches_injected_rogue_class(self, tmp_path):
        # The pyproject anchor keeps rels at "src/repro/..." so the
        # copied tree gets the same package-scope treatment as HEAD.
        (tmp_path / "pyproject.toml").write_text("[tool.none]\n",
                                                 encoding="utf-8")
        copy = tmp_path / "src" / "repro"
        shutil.copytree(SRC, copy)
        system_py = copy / "accel" / "system.py"
        text = system_py.read_text(encoding="utf-8")
        anchor = "self.checkpointer = checkpointer"
        assert anchor in text
        text = text.replace(
            anchor,
            anchor + "\n            self._rogue = RogueLintBuffer()",
        ) + self.ROGUE
        system_py.write_text(text, encoding="utf-8")
        result = lint_paths([copy], rules="R11")
        (finding,) = result.findings
        assert "'RogueLintBuffer'" in finding.message
        assert finding.path.endswith("accel/system.py")

    def test_audit_system_catches_the_same_class(self):
        from repro.accel.config import (
            ArchitectureConfig,
            SCALED_DEFAULTS,
            _design,
        )
        from repro.accel.system import AcceleratorSystem
        from repro.checkpoint import SnapshotAuditError, audit_system
        from repro.graph import web_graph

        class RogueLintBuffer:
            def __init__(self):
                self.rows = []

        RogueLintBuffer.__module__ = "repro.accel.rogue"
        graph = web_graph(120, 480, seed=3)
        config = ArchitectureConfig(
            _design(2, 2, "shared", "bfs", n_channels=2),
            **SCALED_DEFAULTS,
        )
        system = AcceleratorSystem(graph, "bfs", config)
        system._rogue = RogueLintBuffer()
        with pytest.raises(SnapshotAuditError, match="RogueLintBuffer"):
            audit_system(system)
