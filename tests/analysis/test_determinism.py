"""Two lint runs over the tree must produce byte-identical output.

The linter that certifies the simulator's determinism must itself be
deterministic: fresh parses, fresh indexes, same bytes -- for every
emitter.  (No timestamps, no absolute paths, no hash-order effects.)
"""

import pathlib

from repro.analysis import lint_paths
from repro.analysis.emitters import emit_json, emit_sarif, emit_text

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


class TestLintDeterminism:
    def test_two_runs_byte_identical(self):
        first = lint_paths([SRC])
        second = lint_paths([SRC])
        assert emit_text(first, show_suppressed=True) \
            == emit_text(second, show_suppressed=True)
        assert emit_json(first, show_suppressed=True) \
            == emit_json(second, show_suppressed=True)
        assert emit_sarif(first) == emit_sarif(second)

    def test_paths_are_repo_relative(self):
        result = lint_paths([SRC])
        for finding in result.findings + result.suppressed:
            assert not finding.path.startswith("/"), finding.path
            assert finding.path.startswith("src/repro/"), finding.path

    def test_cache_hit_and_miss_byte_identical(self, tmp_path):
        cold = lint_paths([SRC])
        miss = lint_paths([SRC], cache_dir=tmp_path)
        hit = lint_paths([SRC], cache_dir=tmp_path)
        assert any("cache miss" in note for note in miss.notes)
        assert any("cache hit" in note for note in hit.notes)
        # Findings must not depend on whether the parse index came
        # from disk; only the cache-status note may differ.
        for result in (cold, miss, hit):
            result.notes = []
        assert emit_json(cold, show_suppressed=True) \
            == emit_json(miss, show_suppressed=True) \
            == emit_json(hit, show_suppressed=True)
        assert emit_sarif(cold) == emit_sarif(hit)
