"""Call-graph construction and resolution (simlint v2, DESIGN.md 6.10).

Half of these run over synthetic two-module trees to pin the precise
resolution rules (same-class first, bound-method aliases, returned-class
summaries); the rest run over the real source tree and assert the edges
the whole-program passes depend on actually exist -- e.g. the engine's
dispatch loop reaching every component's tick/step_n by name.
"""

import pathlib

import pytest

from repro.analysis.callgraph import CallGraph, _call_nodes
from repro.analysis.engine import collect_sources
from repro.analysis.source import parse_source

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

ENGINE_REL = "src/repro/sim/engine.py"
BANK_REL = "src/repro/core/bank.py"
DRAM_REL = "src/repro/mem/dram.py"


def graph_of(*modules):
    """CallGraph over (rel, text) synthetic modules (include_all)."""
    sources = []
    for rel, text in modules:
        source, error = parse_source(rel, text, rel=rel)
        assert source is not None, error
        sources.append(source)
    return CallGraph(sources, include_all=True)


@pytest.fixture(scope="module")
def tree():
    sources, errors = collect_sources([SRC])
    assert not errors, errors
    return CallGraph(sources)


class TestRealTreeEdges:
    def test_engine_step_dispatches_to_component_ticks(self, tree):
        # The load-bearing edge for every whole-program pass: the
        # engine's per-cycle loop calls component.tick(self), which
        # name-dispatch must resolve to each component's tick.
        callees = set(tree.callees((ENGINE_REL, "Engine._step")))
        assert (BANK_REL, "MomsBank.tick") in callees
        assert (DRAM_REL, "DramChannel.tick") in callees

    def test_fused_dispatch_reaches_step_n(self, tree):
        step_n_keys = {
            key for key in tree.functions if key[1].endswith(".step_n")
        }
        assert (BANK_REL, "MomsBank.step_n") in step_n_keys
        assert (DRAM_REL, "DramChannel.step_n") in step_n_keys
        # Some engine method must actually call into them.
        engine_keys = [key for key in tree.functions
                       if key[0] == ENGINE_REL]
        reached = set()
        for key in engine_keys:
            reached.update(tree.callees(key))
        assert (BANK_REL, "MomsBank.step_n") in reached

    def test_file_dependents_closes_over_callers(self, tree):
        dependents = tree.file_dependents([BANK_REL])
        assert BANK_REL in dependents
        # The system builds banks; an edit to bank.py is in its scope.
        assert "src/repro/accel/system.py" in dependents

    def test_reachable_from_respects_skip_classes(self, tree):
        seed = (ENGINE_REL, "Engine._step")
        full = tree.reachable_from([seed])
        pruned = tree.reachable_from([seed], skip_classes={"MomsBank"})
        assert (BANK_REL, "MomsBank.tick") in full
        assert all(tree.functions[key].class_name != "MomsBank"
                   for key in pruned)
        assert pruned < full


class TestSyntheticResolution:
    def test_same_class_method_preferred(self):
        graph = graph_of(
            ("repro/a.py",
             "class Alpha:\n"
             "    def run(self):\n"
             "        self.helper()\n"
             "    def helper(self):\n"
             "        pass\n"),
            ("repro/b.py",
             "class Beta:\n"
             "    def helper(self):\n"
             "        pass\n"),
        )
        key = ("repro/a.py", "Alpha.run")
        assert tuple(graph.callees(key)) == (("repro/a.py", "Alpha.helper"),)

    def test_bound_method_alias_resolves(self):
        graph = graph_of(
            ("repro/a.py",
             "class Decoder:\n"
             "    def __init__(self, vec):\n"
             "        self._decode_step = (self._decode_vec if vec\n"
             "                             else self._decode_scalar)\n"
             "    def run(self):\n"
             "        self._decode_step()\n"
             "    def _decode_vec(self):\n"
             "        pass\n"
             "    def _decode_scalar(self):\n"
             "        pass\n"),
        )
        callees = set(graph.callees(("repro/a.py", "Decoder.run")))
        assert ("repro/a.py", "Decoder._decode_vec") in callees
        assert ("repro/a.py", "Decoder._decode_scalar") in callees

    def test_bare_name_prefers_same_file(self):
        graph = graph_of(
            ("repro/a.py",
             "def build():\n"
             "    pass\n"
             "def run():\n"
             "    build()\n"),
            ("repro/b.py",
             "def build():\n"
             "    pass\n"),
        )
        assert tuple(graph.callees(("repro/a.py", "run"))) \
            == (("repro/a.py", "build"),)

    def test_returned_classes_fixpoint_through_wrappers(self):
        graph = graph_of(
            ("repro/a.py",
             "class TokenQueue:\n"
             "    pass\n"
             "def make_queue():\n"
             "    return TokenQueue()\n"
             "def make_default():\n"
             "    return make_queue()\n"
             "class Ring:\n"
             "    def clone(self):\n"
             "        return self\n"),
        )
        returned = graph.returned_classes()
        assert returned[("repro/a.py", "make_queue")] == {"TokenQueue"}
        # One fixpoint hop: the wrapper inherits the summary.
        assert returned[("repro/a.py", "make_default")] == {"TokenQueue"}
        # `return self` resolves to the enclosing class.
        assert returned[("repro/a.py", "Ring.clone")] == {"Ring"}

    def test_call_nodes_covers_nested_expressions(self):
        source, _ = parse_source(
            "repro/a.py",
            "def f(xs):\n"
            "    return [g(h(x)) for x in xs]\n",
            rel="repro/a.py",
        )
        info = source.functions[0]
        names = {node.func.id for node in _call_nodes(info.node)}
        assert names == {"g", "h"}
