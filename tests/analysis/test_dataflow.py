"""May-reach-None dataflow: FlowScan facts and parameter summaries.

These pin the guard forms the interprocedural hook rule (R12) relies
on: which tests establish a non-None fact, which assignments kill it,
and how deref-unsafety propagates through parameter passing.
"""

import ast

from repro.analysis.callgraph import CallGraph
from repro.analysis.dataflow import (
    FlowScan,
    expr_path,
    param_summaries,
    unsafe_arguments,
)
from repro.analysis.source import parse_source


def scan_of(text):
    module = ast.parse(text)
    return FlowScan(module.body[0])


def graph_of(text, rel="repro/a.py"):
    source, error = parse_source(rel, text, rel=rel)
    assert source is not None, error
    return CallGraph([source], include_all=True)


class TestExprPath:
    def test_attribute_chains(self):
        expr = ast.parse("self._tele.bank", mode="eval").body
        assert expr_path(expr) == ("self", "_tele", "bank")
        assert expr_path(ast.parse("tele", mode="eval").body) == ("tele",)

    def test_non_path_expressions(self):
        assert expr_path(ast.parse("f(x)", mode="eval").body) is None
        assert expr_path(ast.parse("a + b", mode="eval").body) is None


class TestFlowScan:
    def test_is_not_none_guard_establishes_fact(self):
        scan = scan_of(
            "def f(self):\n"
            "    if self._tele is not None:\n"
            "        self._tele.record(1)\n"
        )
        (site,) = [s for s in scan.derefs if s.path == ("self", "_tele")]
        assert site.guarded

    def test_unguarded_deref_is_seen(self):
        scan = scan_of(
            "def f(self):\n"
            "    self._tele.record(1)\n"
        )
        (site,) = [s for s in scan.derefs if s.path == ("self", "_tele")]
        assert not site.guarded

    def test_truthiness_is_not_a_fact(self):
        scan = scan_of(
            "def f(self):\n"
            "    if self._tele:\n"
            "        self._tele.record(1)\n"
        )
        (site,) = [s for s in scan.derefs if s.path == ("self", "_tele")]
        assert not site.guarded

    def test_early_return_negation(self):
        scan = scan_of(
            "def f(self):\n"
            "    if self._tele is None:\n"
            "        return\n"
            "    self._tele.record(1)\n"
        )
        (site,) = [s for s in scan.derefs if s.path == ("self", "_tele")]
        assert site.guarded

    def test_assignment_kills_fact(self):
        # Reassigning from a name of unknown status invalidates the
        # guard (a call result, by contrast, is assumed constructed).
        scan = scan_of(
            "def f(self, other):\n"
            "    if self._tele is not None:\n"
            "        self._tele = other\n"
            "        self._tele.record(1)\n"
        )
        sites = [s for s in scan.derefs if s.path == ("self", "_tele")]
        assert any(not s.guarded for s in sites)

    def test_alias_copy_carries_fact(self):
        scan = scan_of(
            "def f(self):\n"
            "    tele = self._tele\n"
            "    if tele is not None:\n"
            "        tele.record(1)\n"
        )
        (site,) = [s for s in scan.derefs if s.path == ("tele",)]
        assert site.guarded

    def test_call_sites_record_facts(self):
        scan = scan_of(
            "def f(self):\n"
            "    if self._tele is not None:\n"
            "        emit(self._tele)\n"
            "    emit(self._fault)\n"
        )
        guarded = [("self", "_tele") in s.facts for s in scan.calls]
        assert guarded == [True, False]


class TestParamSummaries:
    UNSAFE = (
        "def emit(tele, event):\n"
        "    tele.record(event)\n"
    )
    SAFE = (
        "def emit(tele, event):\n"
        "    if tele is None:\n"
        "        return\n"
        "    tele.record(event)\n"
    )

    def test_direct_unguarded_deref_marks_param(self):
        graph = graph_of(self.UNSAFE)
        summaries = param_summaries(graph)
        assert summaries[("repro/a.py", "emit")] == {"tele"}

    def test_guarded_param_is_safe(self):
        graph = graph_of(self.SAFE)
        summaries = param_summaries(graph)
        assert summaries[("repro/a.py", "emit")] == frozenset()

    def test_forwarding_propagates_unsafety(self):
        graph = graph_of(
            self.UNSAFE
            + "def relay(sink, event):\n"
            + "    emit(sink, event)\n"
        )
        summaries = param_summaries(graph)
        assert "sink" in summaries[("repro/a.py", "relay")]

    def test_unsafe_arguments_flags_hook_flow(self):
        graph = graph_of(
            self.UNSAFE
            + "class Bank:\n"
            + "    def tick(self, engine):\n"
            + "        emit(self._tele, 'bank')\n"
        )
        summaries = param_summaries(graph)
        key = ("repro/a.py", "Bank.tick")
        scan = FlowScan(graph.functions[key].node)
        hits = []
        for site in scan.calls:
            hits.extend(unsafe_arguments(
                graph, key, site, summaries,
                lambda path: path[-1] == "_tele",
            ))
        (hit,) = hits
        assert hit.path == ("self", "_tele")
        assert hit.param == "tele"
        assert hit.callee == ("repro/a.py", "emit")

    def test_guarded_call_site_is_clean(self):
        graph = graph_of(
            self.UNSAFE
            + "class Bank:\n"
            + "    def tick(self, engine):\n"
            + "        if self._tele is not None:\n"
            + "            emit(self._tele, 'bank')\n"
        )
        summaries = param_summaries(graph)
        key = ("repro/a.py", "Bank.tick")
        scan = FlowScan(graph.functions[key].node)
        hits = []
        for site in scan.calls:
            hits.extend(unsafe_arguments(
                graph, key, site, summaries,
                lambda path: path[-1] == "_tele",
            ))
        assert not hits
