"""SoA channel columns: wraparound, throttle interaction, wake one-shots."""

import pytest

from repro.core.messages import MomsRequest, MomsResponse
from repro.sim import Channel, Engine, SoaChannel
from repro.sim.engine import Component


def make_soa(capacity, kind="request"):
    engine = Engine()
    channel = engine.add_channel(SoaChannel(capacity, name="soa", kind=kind))
    return engine, channel


class Waker(Component):
    """Records its ticks; demand-driven so commits can wake it."""

    demand_driven = True

    def __init__(self):
        self.ticked = 0

    def tick(self, engine):
        self.ticked += 1


class TestFieldsRoundTrip:
    def test_request_fields_survive_ring_wraparound(self):
        _, ch = make_soa(4)
        # Cycle tokens through repeatedly so _head wraps the ring.
        for round_index in range(10):
            for lane in range(3):
                ch.push_request(4 * (round_index + lane), 4,
                                ("id", round_index, lane), lane)
            ch.commit()
            for lane in range(3):
                addr, size, req_id, port = ch.pop_request()
                assert addr == 4 * (round_index + lane)
                assert size == 4
                assert req_id == ("id", round_index, lane)
                assert port == lane
            ch.commit()

    def test_response_fields_survive_ring_wraparound(self):
        _, ch = make_soa(2, kind="response")
        for index in range(9):
            payload = bytes([index])
            ch.push_response(index, 64 + index, payload, index % 4)
            ch.commit()
            req_id, addr, data, port = ch.front_response()
            assert (req_id, addr, data, port) == (
                index, 64 + index, payload, index % 4
            )
            ch.drop()
            ch.commit()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SoaChannel(4, kind="beat")

    def test_pop_line_returns_addr_and_data(self):
        _, ch = make_soa(2, kind="response")
        ch.push_response(None, 128, b"\x01\x02", 0)
        ch.commit()
        assert ch.pop_line() == (128, b"\x01\x02")


class TestObjectCompat:
    def test_object_push_and_pop_rebuild_equal_requests(self):
        _, ch = make_soa(4)
        ch.push(MomsRequest(24, 4, req_id=7, port=2))
        ch.commit()
        token = ch.pop()
        assert isinstance(token, MomsRequest)
        assert (token.addr, token.size, token.req_id, token.port) \
            == (24, 4, 7, 2)

    def test_object_response_round_trip(self):
        _, ch = make_soa(4, kind="response")
        ch.push(MomsResponse(9, 48, b"\xff", port=1))
        ch.commit()
        token = ch.front()
        assert isinstance(token, MomsResponse)
        assert (token.req_id, token.addr, token.data, token.port) \
            == (9, 48, b"\xff", 1)
        assert len(ch.pop_many()) == 1

    def test_push_many_checks_capacity_once(self):
        _, ch = make_soa(2)
        with pytest.raises(OverflowError):
            ch.push_many([MomsRequest(0, 4), MomsRequest(4, 4),
                          MomsRequest(8, 4)])
        assert ch.pending == 0


class TestThrottleInteraction:
    def test_throttle_blocks_new_pushes_but_not_inflight_pops(self):
        _, ch = make_soa(4)
        ch.push_request(0, 4, "a", 0)
        ch.push_request(4, 4, "b", 1)
        ch.commit()
        ch.throttle(0)
        assert not ch.can_push()
        with pytest.raises(OverflowError):
            ch.push_request(8, 4, "c", 2)
        assert ch.pop_request()[2] == "a"
        assert ch.pop_request()[2] == "b"
        ch.restore()
        assert ch.capacity == 4
        ch.validate()

    def test_throttle_above_base_grows_columns_preserving_order(self):
        _, ch = make_soa(2)
        # Rotate the ring first so _head != 0 when the columns grow.
        ch.push_request(0, 4, "x", 0)
        ch.commit()
        assert ch.pop_request()[2] == "x"
        ch.commit()
        ch.push_request(10, 4, "a", 1)
        ch.push_request(20, 4, "b", 2)
        ch.commit()
        ch.throttle(6)  # larger than the base power-of-two ring
        for index in range(4):
            ch.push_request(30 + index, 4, ("new", index), 3)
        ch.commit()
        ids = [ch.pop_request()[2] for _ in range(6)]
        assert ids == ["a", "b", ("new", 0), ("new", 1),
                       ("new", 2), ("new", 3)]

    def test_wraparound_then_throttle_then_restore(self):
        _, ch = make_soa(2)
        for spin in range(3):  # wrap the 2-slot ring
            ch.push_request(spin, 4, spin, 0)
            ch.commit()
            assert ch.pop_request()[2] == spin
            ch.commit()
        ch.push_request(99, 4, "keep", 0)
        ch.commit()
        ch.throttle(0)
        assert not ch.can_push()
        assert ch.front_request()[2] == "keep"
        ch.restore()
        assert ch.can_push()
        assert ch.pop_request()[2] == "keep"
        ch.validate()


class TestSpaceWakeOneShots:
    def _engine_with(self, channel):
        engine = Engine()
        engine.add_channel(channel)
        waker = engine.add_component(Waker())
        return engine, waker

    def test_request_space_wake_fires_once_when_space_frees(self):
        ch = SoaChannel(1, name="soa")
        engine, waker = self._engine_with(ch)
        ch.push_request(0, 4, "a", 0)
        engine._step()  # commit: channel full, no space wake
        ch.request_space_wake(waker)
        engine._step()  # full channel committed nothing: no wake yet
        assert waker.ticked == 0
        ch.pop_request()
        engine._step()  # pop commits -> space -> one-shot fires
        engine._step()  # waker ticks
        assert waker.ticked == 1
        engine._step()
        engine._step()
        assert waker.ticked == 1  # one-shot: no re-fire
        assert ch._space_requests == []

    def test_data_subscription_wakes_on_visible_tokens(self):
        ch = SoaChannel(2, name="soa")
        engine, waker = self._engine_with(ch)
        ch.subscribe_data(waker)
        ch.push_request(0, 4, "a", 0)
        engine._step()  # commit makes the token visible, wakes
        engine._step()  # tick
        assert waker.ticked == 1

    def test_plain_channel_one_shot_matches_soa_behaviour(self):
        for channel in (Channel(1, name="obj"), SoaChannel(1, name="soa")):
            engine, waker = self._engine_with(channel)
            channel.push_request(0, 4, "a", 0)
            engine._step()
            channel.request_space_wake(waker)
            channel.pop_request()
            engine._step()
            engine._step()
            assert waker.ticked == 1, channel.name
