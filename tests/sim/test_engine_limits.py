"""Cycle-budget diagnostics: CycleLimitError context on opt-in."""

import pytest

from repro.sim import Channel, Component, CycleLimitError, Engine


class Forever(Component):
    """Always busy, never finishes: exercises the budget path."""

    demand_driven = True

    def __init__(self, channel):
        self.channel = channel

    def tick(self, engine):
        if self.channel.can_pop():
            self.channel.pop()
        if self.channel.can_push():
            self.channel.push("again")
        engine.wake(self)

    def is_idle(self):
        return False


def _busy_engine():
    engine = Engine()
    channel = engine.add_channel(Channel(2, name="spin"))
    engine.add_component(Forever(channel))
    return engine


class TestCycleLimit:
    def test_default_still_returns_at_budget(self):
        """Pollers rely on max_cycles returning, not raising."""
        engine = _busy_engine()
        elapsed = engine.run(done=lambda: False, max_cycles=50)
        assert elapsed == 50

    def test_raise_on_limit_carries_context(self):
        engine = _busy_engine()
        with pytest.raises(CycleLimitError) as excinfo:
            engine.run(done=lambda: False, max_cycles=75,
                       raise_on_limit=True)
        error = excinfo.value
        message = str(error)
        # The message names the budget, the current cycle, and the
        # activity summary -- enough to triage without a debugger.
        assert "cycle budget of 75" in message
        assert "at cycle 75" in message
        assert "component_ticks=" in message
        assert error.activity["cycles_simulated"] == 75
        assert error.report is not None
        assert error.report["cycle"] == 75

    def test_not_raised_when_done_in_time(self):
        engine = _busy_engine()
        engine.run(done=lambda: engine.now >= 10, max_cycles=100,
                   raise_on_limit=True)
        assert engine.now < 100
