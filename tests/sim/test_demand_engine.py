"""Demand-driven engine: wake semantics, batched pushes, legacy parity.

The demand-driven engine must (a) skip ticks that are provably no-ops,
(b) never skip a tick that could make progress, and (c) produce the
same cycle trajectory as the all-tick :class:`LegacyEngine`.
"""

import pytest

from repro.sim import Channel, Component, DelayLine
from repro.sim.engine import Engine, LegacyEngine, make_engine


class CountingProducer(Component):
    """Pushes *total* tokens, one per cycle, whenever there is room."""

    demand_driven = True

    def __init__(self, engine, channel, total):
        self.channel = channel
        self.remaining = total
        engine.add_component(self)
        channel.subscribe_space(self)

    def tick(self, engine):
        if self.remaining and self.channel.can_push():
            self.channel.push(self.remaining)
            self.remaining -= 1

    def is_idle(self):
        return self.remaining == 0


class CountingConsumer(Component):
    demand_driven = True

    def __init__(self, engine, channel):
        self.channel = channel
        self.received = []
        engine.add_component(self)
        channel.subscribe_data(self)

    def tick(self, engine):
        if self.channel.can_pop():
            self.received.append(self.channel.pop())


def build_pipeline(engine, total=20, capacity=4):
    channel = engine.add_channel(Channel(capacity, name="pipe"))
    producer = CountingProducer(engine, channel, total)
    consumer = CountingConsumer(engine, channel)
    return producer, consumer


class TestDemandWakes:
    def test_transfers_everything_in_order(self):
        engine = Engine()
        producer, consumer = build_pipeline(engine, total=20)
        engine.run(done=lambda: len(consumer.received) == 20,
                   max_cycles=500)
        assert consumer.received == list(range(20, 0, -1))

    def test_matches_legacy_cycle_for_cycle(self):
        outcomes = []
        for engine in (Engine(), LegacyEngine()):
            producer, consumer = build_pipeline(engine, total=20)
            engine.run(done=lambda: len(consumer.received) == 20,
                       max_cycles=500)
            outcomes.append((engine.now, tuple(consumer.received)))
        assert outcomes[0] == outcomes[1]

    def test_demand_engine_skips_ticks(self):
        # A consumer blocked on an empty channel must not be ticked
        # while a slow producer trickles tokens through a delay line.
        engine = Engine()
        line = engine.add_delay_line(DelayLine(50, name="slow"))
        channel = engine.add_channel(Channel(4, name="out"))
        consumer = CountingConsumer(engine, channel)

        class Refiller(Component):
            demand_driven = True

            def __init__(self):
                self.sent = 0
                engine.add_component(self)
                line.subscribe_data(self)

            def tick(self, eng):
                while line.can_pop():
                    channel.push(line.pop())
                if self.sent < 3 and not line.pending:
                    line.push(self.sent)
                    self.sent += 1

            def is_idle(self):
                return self.sent == 3

        refiller = Refiller()
        engine.wake(refiller)
        engine.run(done=lambda: len(consumer.received) == 3,
                   max_cycles=1000)
        # ~150 cycles of latency were covered; the consumer must have
        # ticked only around actual deliveries, not every cycle.
        assert engine.now >= 150
        assert consumer.ticks < 20
        assert engine.component_ticks < engine.now

    def test_wake_at_past_or_present_ticks_next_cycle(self):
        engine = Engine()
        ticked = []

        class Probe(Component):
            demand_driven = True

            def tick(self, eng):
                ticked.append(eng.now)

        probe = engine.add_component(Probe())
        engine.wake_at(probe, 5)
        # Drive with _step (run() would pre-wake every demand component).
        for _ in range(8):
            engine._step()
        assert ticked == [5]

    def test_request_wake_outside_tick(self):
        engine = Engine()
        ticked = []

        class Probe(Component):
            demand_driven = True

            def tick(self, eng):
                ticked.append(eng.now)

        probe = engine.add_component(Probe())
        probe.request_wake()
        engine._step()
        assert ticked == [0]


class TestPushMany:
    def make(self):
        engine = Engine()
        channel = engine.add_channel(Channel(4, name="bulk"))
        return engine, channel

    def test_not_visible_until_commit(self):
        engine, channel = self.make()
        channel.push_many([1, 2, 3])
        assert not channel.can_pop()
        assert channel.pending == 3
        channel.commit()
        assert [channel.pop() for _ in range(3)] == [1, 2, 3]

    def test_capacity_checked_as_a_block(self):
        engine, channel = self.make()
        channel.push(0)
        assert channel.can_push_n(3)
        assert not channel.can_push_n(4)
        with pytest.raises(OverflowError):
            channel.push_many([1, 2, 3, 4])
        # The failed bulk push must not have staged anything.
        assert channel.pending == 1

    def test_empty_push_many_is_a_noop(self):
        engine, channel = self.make()
        channel.push_many([])
        assert channel.pending == 0
        assert not channel._dirty

    def test_wakes_data_subscriber_once(self):
        engine, channel = self.make()
        consumer = CountingConsumer(engine, channel)
        channel.push_many([7, 8])
        channel.commit()
        assert engine._wake_next == {consumer._engine_order: consumer}

    def test_equivalent_to_single_pushes(self):
        for batched in (False, True):
            engine = Engine()
            channel = engine.add_channel(Channel(8))
            if batched:
                channel.push_many([1, 2, 3])
            else:
                for item in (1, 2, 3):
                    channel.push(item)
            channel.commit()
            assert len(channel) == 3
            assert channel.free_slots() == 5


class TestMakeEngine:
    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "legacy")
        assert isinstance(make_engine(), LegacyEngine)
        monkeypatch.setenv("REPRO_ENGINE", "demand")
        engine = make_engine()
        assert isinstance(engine, Engine)
        assert not isinstance(engine, LegacyEngine)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_engine("turbo")
