"""Fused macro-tick runs are bit-identical to per-cycle execution.

The contract (DESIGN.md Section 6.9): ``REPRO_FUSION=on`` may only
change *how* the engine advances time, never what the model computes
-- same final cycle count, same iteration count, same stats dict,
same output values, and the same byte-identical span stream -- across
algorithms, organizations, kernel modes, active fault plans, and a
checkpoint/restore boundary landing where a fused run would otherwise
be in flight.

Every point here is *structure-starved* (tiny MSHR budget against a
long-latency, deep-queued DRAM channel) so fused retry/drain runs
actually occur; each fused leg asserts nonzero coverage, so the suite
cannot green-wash by silently never fusing.
"""

import hashlib

import numpy as np
import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.checkpoint import load_snapshot, read_header
from repro.faults.plan import NAMED_PLANS
from repro.graph import web_graph
from repro.mem.dram import DramTimings
from repro.tracing import SpansConfig
from repro.tracing.export import spans_jsonl_bytes

GRAPH = web_graph(400, 2000, seed=7)

ALGORITHMS = ("pagerank", "bfs", "sssp", "scc")
ORGANIZATIONS = ("shared", "private", "two-level", "traditional")


def _starved_config(organization, algorithm):
    config = ArchitectureConfig(
        _design(2, 2, organization, algorithm, n_channels=1,
                private_cache_kib=16),
        **dict(SCALED_DEFAULTS, structure_scale=1 / 256),
    )
    config.dram_timings = DramTimings(latency=300,
                                      request_queue_depth=256)
    return config


def _run(fusion, algorithm, organization, kernels, monkeypatch,
         **system_kwargs):
    monkeypatch.setenv("REPRO_ENGINE", "demand")
    monkeypatch.setenv("REPRO_KERNELS", kernels)
    monkeypatch.setenv("REPRO_FUSION", fusion)
    system = AcceleratorSystem(
        GRAPH, algorithm, _starved_config(organization, algorithm),
        **system_kwargs,
    )
    result = system.run(max_iterations=2)
    return system, result


def _assert_identical(fused, unfused):
    assert fused.cycles == unfused.cycles
    assert fused.iterations == unfused.iterations
    assert fused.stats == unfused.stats
    assert np.array_equal(fused.values, unfused.values)


class TestAlgorithmOrganizationMatrix:
    @pytest.mark.parametrize("organization", ORGANIZATIONS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_fused_matches_unfused(self, algorithm, organization,
                                   monkeypatch):
        for kernels in ("vector", "scalar"):
            fused_system, fused = _run(
                "on", algorithm, organization, kernels, monkeypatch)
            assert fused_system.engine.fused_runs > 0, \
                "starved point stopped producing fused runs"
            _, unfused = _run(
                "off", algorithm, organization, kernels, monkeypatch)
            _assert_identical(fused, unfused)

    def test_integer_cap_matches_too(self, monkeypatch):
        """A small REPRO_FUSION=K cap splits runs differently but must
        not change the model either."""
        capped_system, capped = _run(
            "8", "pagerank", "two-level", "vector", monkeypatch)
        assert capped_system.engine.fused_runs > 0
        _, unfused = _run(
            "off", "pagerank", "two-level", "vector", monkeypatch)
        _assert_identical(capped, unfused)


class TestUnderFaultPlan:
    @pytest.mark.parametrize("plan_name", sorted(NAMED_PLANS))
    def test_fused_matches_unfused(self, plan_name, monkeypatch):
        """Fault hooks make the affected components decline fusion
        (their per-cycle injection sites must see every cycle), but
        the engine still fuses elsewhere and the model must not
        move."""
        factory = NAMED_PLANS[plan_name]
        _, fused = _run("on", "pagerank", "two-level", "vector",
                        monkeypatch, fault_plan=factory())
        _, unfused = _run("off", "pagerank", "two-level", "vector",
                          monkeypatch, fault_plan=factory())
        _assert_identical(fused, unfused)


class TestCheckpointAcrossFusedRun:
    def test_restore_resumes_fusing_bit_identically(self, tmp_path,
                                                    monkeypatch):
        """A checkpoint interval short enough to land inside the
        starved point's fused windows: the stability oracle clamps
        each run at the hook point, the snapshot is written on the
        real tick, and the resumed engine must re-enter fusion and
        finish bit-identical to the unfused straight run."""
        _, unfused = _run("off", "pagerank", "shared", "vector",
                          monkeypatch)
        fused_system, fused = _run("on", "pagerank", "shared", "vector",
                                   monkeypatch)
        assert fused_system.engine.fused_runs > 0
        _assert_identical(fused, unfused)

        snap = str(tmp_path / "mid.snap")
        ck_system, checkpointed = _run(
            "on", "pagerank", "shared", "vector", monkeypatch,
            checkpoint=f"{snap}:2000",
        )
        assert ck_system.engine.fused_runs > 0
        _assert_identical(checkpointed, unfused)

        header = read_header(snap)
        assert 0 < header["cycle"] < unfused.cycles  # genuinely mid-run
        resumed_system, _ = load_snapshot(snap)
        replayed = resumed_system.resume_run()
        # The snapshot carries the fusion cap, so the restored engine
        # must fuse again over the remaining cycles, not fall back to
        # per-cycle ticking.
        assert resumed_system.engine.fused_runs > 0
        _assert_identical(replayed, unfused)


class TestSpanStream:
    def test_span_stream_sha_unchanged(self, monkeypatch):
        """Span tracing makes traced components decline fusion, so the
        sampled stream -- pinned by SHA-256 of the canonical JSONL
        bytes -- must come out byte-identical either way."""

        def leg(fusion):
            system, result = _run(
                fusion, "pagerank", "two-level", "vector", monkeypatch,
                spans=SpansConfig(sample_rate=8),
            )
            sha = hashlib.sha256(
                spans_jsonl_bytes(system.tracer)).hexdigest()
            return result, sha

        fused, fused_sha = leg("on")
        unfused, unfused_sha = leg("off")
        assert fused_sha == unfused_sha
        _assert_identical(fused, unfused)
