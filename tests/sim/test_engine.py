"""Tests for the cycle engine: ticking, idle skip, deadlock detection."""

import pytest

from repro.sim import Channel, Component, DeadlockError, DelayLine, Engine


class Producer(Component):
    """Pushes ``count`` integers, one per cycle."""

    def __init__(self, out, count):
        self.out = out
        self.count = count
        self.sent = 0

    def tick(self, engine):
        if self.sent < self.count and self.out.can_push():
            self.out.push(self.sent)
            self.sent += 1

    def is_idle(self):
        return self.sent == self.count


class Consumer(Component):
    """Pops one token per cycle."""

    def __init__(self, inp):
        self.inp = inp
        self.received = []

    def tick(self, engine):
        if self.inp.can_pop():
            self.received.append(self.inp.pop())


class LatencyRelay(Component):
    """Moves tokens from a channel into a delay line and back out."""

    def __init__(self, inp, line, out):
        self.inp = inp
        self.line = line
        self.out = out

    def tick(self, engine):
        if self.inp.can_pop():
            self.line.push(self.inp.pop())
        if self.line.can_pop() and self.out.can_push():
            self.out.push(self.line.pop())


class TestEngine:
    def test_producer_consumer_transfers_all(self):
        engine = Engine()
        ch = engine.add_channel(Channel(4))
        producer = engine.add_component(Producer(ch, 10))
        consumer = engine.add_component(Consumer(ch))
        engine.run(done=lambda: len(consumer.received) == 10, max_cycles=100)
        assert consumer.received == list(range(10))
        assert producer.is_idle()

    def test_throughput_one_per_cycle(self):
        """A deep channel sustains one token per cycle after warm-up."""
        engine = Engine()
        ch = engine.add_channel(Channel(4))
        engine.add_component(Producer(ch, 100))
        consumer = engine.add_component(Consumer(ch))
        cycles = engine.run(done=lambda: len(consumer.received) == 100,
                            max_cycles=1000)
        # 100 tokens, 1-cycle pipeline fill: ~101 cycles.
        assert cycles <= 105

    def test_capacity_one_halves_throughput(self):
        """With capacity 1 and registered credit return, rate is 1/2."""
        engine = Engine()
        ch = engine.add_channel(Channel(1))
        engine.add_component(Producer(ch, 50))
        consumer = engine.add_component(Consumer(ch))
        cycles = engine.run(done=lambda: len(consumer.received) == 50,
                            max_cycles=1000)
        assert 95 <= cycles <= 105

    def test_idle_fast_forward_over_latency(self):
        """Cycles spent waiting on a long delay line are skipped."""
        engine = Engine()
        inp = engine.add_channel(Channel(2))
        out = engine.add_channel(Channel(2))
        line = engine.add_delay_line(DelayLine(500))
        engine.add_component(LatencyRelay(inp, line, out))
        consumer = engine.add_component(Consumer(out))
        inp.push("x")
        inp.commit()
        engine.run(done=lambda: len(consumer.received) == 1, max_cycles=2000)
        assert consumer.received == ["x"]
        assert engine.now >= 500
        assert engine.cycles_skipped > 400
        assert engine.cycles_simulated < 100

    def test_run_until_globally_idle(self):
        engine = Engine()
        ch = engine.add_channel(Channel(4))
        engine.add_component(Producer(ch, 5))
        consumer = engine.add_component(Consumer(ch))
        engine.run()  # no done(): run until idle
        assert consumer.received == list(range(5))

    def test_deadlock_detected(self):
        """A consumer-less full channel with unreachable done() deadlocks."""
        engine = Engine()
        ch = engine.add_channel(Channel(1))
        engine.add_component(Producer(ch, 5))
        with pytest.raises(DeadlockError):
            engine.run(done=lambda: False)

    def test_determinism(self):
        """Two identical systems produce identical cycle counts."""
        results = []
        for _ in range(2):
            engine = Engine()
            ch = engine.add_channel(Channel(3))
            engine.add_component(Producer(ch, 37))
            consumer = engine.add_component(Consumer(ch))
            cycles = engine.run(done=lambda: len(consumer.received) == 37,
                                max_cycles=10_000)
            results.append(cycles)
        assert results[0] == results[1]

    def test_max_cycles_bounds_run(self):
        engine = Engine()
        ch = engine.add_channel(Channel(1))
        engine.add_component(Producer(ch, 10**9))
        engine.add_component(Consumer(ch))
        cycles = engine.run(done=lambda: False, max_cycles=50)
        assert cycles == 50
