"""Unit and property tests for Channel and DelayLine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, DelayLine, Engine


def make_engine_with_channel(capacity):
    engine = Engine()
    channel = engine.add_channel(Channel(capacity, name="t"))
    return engine, channel


class TestChannel:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Channel(0)

    def test_push_not_visible_same_cycle(self):
        _, ch = make_engine_with_channel(4)
        ch.push("a")
        assert not ch.can_pop()

    def test_push_visible_after_commit(self):
        _, ch = make_engine_with_channel(4)
        ch.push("a")
        ch.commit()
        assert ch.can_pop()
        assert ch.front() == "a"
        assert ch.pop() == "a"

    def test_fifo_order(self):
        _, ch = make_engine_with_channel(8)
        for i in range(5):
            ch.push(i)
        ch.commit()
        assert [ch.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_blocks_push(self):
        _, ch = make_engine_with_channel(2)
        ch.push(1)
        ch.push(2)
        assert not ch.can_push()
        with pytest.raises(OverflowError):
            ch.push(3)

    def test_pop_frees_slot_only_next_cycle(self):
        """Registered capacity: a pop in cycle t frees the slot at t+1."""
        _, ch = make_engine_with_channel(1)
        ch.push(1)
        ch.commit()
        assert ch.pop() == 1
        # Same cycle: slot not yet reusable.
        assert not ch.can_push()
        ch.commit()
        assert ch.can_push()

    def test_pending_counts_staged_and_ready(self):
        _, ch = make_engine_with_channel(4)
        ch.push(1)
        assert ch.pending == 1
        assert len(ch) == 0
        ch.commit()
        assert ch.pending == 1
        assert len(ch) == 1

    def test_push_marks_engine_active(self):
        engine, ch = make_engine_with_channel(4)
        engine._active = False
        ch.push(1)
        assert engine._active

    @given(st.lists(st.integers(), max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_everything_pushed_is_popped_in_order(self, items):
        """Property: channel is a lossless FIFO across arbitrary cycles."""
        _, ch = make_engine_with_channel(max(len(items), 1))
        for item in items:
            ch.push(item)
        ch.commit()
        out = []
        while ch.can_pop():
            out.append(ch.pop())
        assert out == items


class TestPushManyBoundaries:
    def test_exactly_full_is_accepted(self):
        _, ch = make_engine_with_channel(4)
        assert ch.can_push_n(4)
        ch.push_many([1, 2, 3, 4])
        assert ch.pending == 4
        assert not ch.can_push()
        assert ch.free_slots() == 0

    def test_zero_count_is_a_noop_even_when_full(self):
        _, ch = make_engine_with_channel(2)
        ch.push_many([1, 2])
        assert ch.can_push_n(0)
        ch.push_many([])  # must not raise on a full channel
        assert ch.pending == 2
        assert ch.total_pushed == 2

    def test_over_capacity_raises_and_leaves_channel_unchanged(self):
        _, ch = make_engine_with_channel(3)
        ch.push(1)
        assert not ch.can_push_n(3)
        with pytest.raises(OverflowError):
            ch.push_many([2, 3, 4])
        assert ch.pending == 1
        assert ch.total_pushed == 1

    def test_boundary_counts_one_around_capacity(self):
        _, ch = make_engine_with_channel(5)
        assert ch.can_push_n(5)
        assert not ch.can_push_n(6)
        ch.push_many([0] * 4)
        assert ch.can_push_n(1)
        assert not ch.can_push_n(2)

    def test_staged_plus_visible_count_against_capacity(self):
        """Registered occupancy: visible tokens and staged pushes share
        the capacity budget within a cycle."""
        _, ch = make_engine_with_channel(4)
        ch.push_many([1, 2])
        ch.commit()
        ch.push_many([3, 4])  # 2 visible + 2 staged = exactly full
        assert not ch.can_push_n(1)
        with pytest.raises(OverflowError):
            ch.push_many([5])


class TestThrottle:
    def test_throttle_blocks_pushes_and_restore_reopens(self):
        _, ch = make_engine_with_channel(4)
        ch.push(1)
        ch.throttle(0)
        assert not ch.can_push()
        assert not ch.can_push_n(1)
        with pytest.raises(OverflowError):
            ch.push(2)
        ch.restore()
        assert ch.capacity == 4
        assert ch.can_push()

    def test_tokens_in_flight_survive_a_throttle_window(self):
        _, ch = make_engine_with_channel(2)
        ch.push_many([1, 2])
        ch.commit()
        ch.throttle(0)
        assert ch.pop() == 1
        assert ch.pop() == 2
        ch.restore()
        ch.validate()

    def test_restore_is_idempotent(self):
        _, ch = make_engine_with_channel(3)
        ch.restore()  # never throttled: no-op
        assert ch.capacity == 3
        ch.throttle(0)
        ch.throttle(0)
        ch.restore()
        ch.restore()
        assert ch.capacity == 3

    def test_validate_flags_overfull_channel(self):
        _, ch = make_engine_with_channel(2)
        ch.validate()
        ch._visible = 3  # corrupt the ring accounting deliberately
        with pytest.raises(AssertionError):
            ch.validate()


class TestDelayLine:
    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            DelayLine(0)

    def test_latency_respected(self):
        engine = Engine()
        line = engine.add_delay_line(DelayLine(3))
        line.push("x")
        for _ in range(3):
            assert not line.can_pop()
            engine._step()
        assert line.can_pop()
        assert line.pop() == "x"

    def test_next_event_time(self):
        engine = Engine()
        line = engine.add_delay_line(DelayLine(5))
        assert line.next_event_time() is None
        line.push("x")
        assert line.next_event_time() == 5

    def test_fifo_across_pushes_in_different_cycles(self):
        engine = Engine()
        line = engine.add_delay_line(DelayLine(2))
        line.push("a")
        engine._step()
        line.push("b")
        engine._step()
        assert line.pop() == "a"
        assert not line.can_pop()
        engine._step()
        assert line.pop() == "b"

    def test_pop_before_ready_raises(self):
        engine = Engine()
        line = engine.add_delay_line(DelayLine(2))
        line.push("a")
        with pytest.raises(IndexError):
            line.pop()
